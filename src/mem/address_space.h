/**
 * @file
 * Target address-space layout and the dynamic memory manager
 * (paper §3.2.1, Figure 3).
 *
 * "Graphite allocates a part of the address space for thread stacks ...
 * Additionally, Graphite implements a dynamic memory manager that
 * services requests for dynamic memory from the application by
 * intercepting the brk, mmap and munmap system calls and allocating (or
 * deallocating) memory from designated parts of the address space."
 *
 * Segments (Figure 3): code | static data | program heap (brk) |
 * dynamically allocated segments (mmap) | stack segment | kernel
 * reserved. The target malloc/free used by the instrumentation API is
 * built on top of brk with a first-fit free list.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Fixed segment boundaries of the target address space. */
struct AddressSpaceLayout
{
    static constexpr addr_t CODE_BASE = 0x0000'1000;
    static constexpr addr_t CODE_END = 0x0100'0000;
    static constexpr addr_t STATIC_BASE = 0x0100'0000;
    static constexpr addr_t STATIC_END = 0x1000'0000;
    static constexpr addr_t HEAP_BASE = 0x1000'0000;
    static constexpr addr_t HEAP_END = 0x4000'0000;
    static constexpr addr_t MMAP_BASE = 0x4000'0000;
    static constexpr addr_t MMAP_END = 0x7000'0000;
    static constexpr addr_t STACK_BASE = 0x7000'0000;
    static constexpr addr_t STACK_END = 0xF000'0000;

    /** Segment containing an address, for diagnostics. */
    static const char* segmentName(addr_t a);
};

/**
 * Dynamic memory manager for the target address space. In the original
 * system these operations execute at the MCP so every process observes a
 * consistent view; here the same effect is achieved with internal
 * locking, and the syscall layer routes brk/mmap/munmap requests to it.
 */
class MemoryManager
{
  public:
    /**
     * @param total_tiles          tile count (stack partitioning)
     * @param stack_size_per_thread bytes of stack reserved per tile
     */
    MemoryManager(tile_id_t total_tiles,
                  std::uint64_t stack_size_per_thread);

    /** @name System-call-level interface (used by the syscall layer) @{ */

    /**
     * Emulated brk: set the program break to @p new_brk (0 queries).
     * @return the new break.
     */
    addr_t brk(addr_t new_brk);

    /** Emulated anonymous mmap: allocate @p length bytes, page aligned. */
    addr_t mmap(std::uint64_t length);

    /** Emulated munmap. Fatal on non-mapped range (user error). */
    void munmap(addr_t addr, std::uint64_t length);

    /** @} */

    /** @name Target heap allocator (malloc/free over brk) @{ */

    /**
     * Allocate @p size bytes (16-byte aligned) from the target heap.
     * Fatal when the heap segment is exhausted.
     */
    addr_t allocate(std::uint64_t size);

    /** Free a block returned by allocate(). Fatal on bad pointer. */
    void deallocate(addr_t addr);

    /** @} */

    /** Base address of tile @p tile's stack (grows upward here). */
    addr_t stackBase(tile_id_t tile) const;

    /** Stack bytes reserved per thread. */
    std::uint64_t stackSize() const { return stackSize_; }

    /** @name Statistics @{ */
    stat_t bytesAllocated() const;
    stat_t allocationCount() const;
    /** Bytes currently live (heap blocks + mmap regions). */
    stat_t liveBytes() const;
    /** Blocks + regions currently live. */
    stat_t liveBlockCount() const;
    /** @} */

    /** @name Checkpoint serialization @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    tile_id_t totalTiles_;
    std::uint64_t stackSize_;

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::address_space};
    addr_t heapBrk_ = AddressSpaceLayout::HEAP_BASE;
    addr_t mmapNext_ = AddressSpaceLayout::MMAP_BASE;
    /** Free list: start -> size, coalesced on free. */
    std::map<addr_t, std::uint64_t> freeList_;
    /** Live allocations: start -> size. */
    std::map<addr_t, std::uint64_t> liveBlocks_;
    /** Live mmap regions: start -> size. */
    std::map<addr_t, std::uint64_t> mmapRegions_;
    stat_t bytesAllocated_ = 0;
    stat_t allocCount_ = 0;
};

} // namespace graphite
