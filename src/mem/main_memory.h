/**
 * @file
 * Functional backing store for the simulated (target) address space.
 *
 * Plays the role of DRAM contents: the authoritative copy of every line
 * not currently Modified in some cache. Sparse, page-granular, allocated
 * on demand so a 1024-tile simulation with large stack reservations does
 * not commit host memory it never touches.
 *
 * Thread-safety: page creation is locked; byte access within existing
 * pages is unlocked and relies on the MemorySystem's transaction
 * serialization (reads/writes only happen inside coherence transactions).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/fixed_types.h"

namespace graphite
{

/** Sparse byte-addressable target memory. */
class MainMemory
{
  public:
    static constexpr std::uint64_t PAGE_SIZE = 4096;

    /** Copy @p size bytes at @p addr into @p buf. Untouched pages read 0. */
    void read(addr_t addr, void* buf, size_t size) const;

    /** Copy @p size bytes from @p buf into memory at @p addr. */
    void write(addr_t addr, const void* buf, size_t size);

    /** Number of materialized pages (for tests / footprint stats). */
    size_t pagesAllocated() const;

  private:
    struct Page
    {
        std::uint8_t bytes[PAGE_SIZE] = {};
    };

    Page* findPage(addr_t page_addr) const;
    Page& ensurePage(addr_t page_addr);

    mutable std::mutex mutex_;
    std::unordered_map<addr_t, std::unique_ptr<Page>> pages_;
};

} // namespace graphite
