/**
 * @file
 * Functional backing store for the simulated (target) address space.
 *
 * Plays the role of DRAM contents: the authoritative copy of every line
 * not currently Modified in some cache. Sparse, page-granular, allocated
 * on demand so a 1024-tile simulation with large stack reservations does
 * not commit host memory it never touches.
 *
 * Thread-safety: the page table is sharded into NUM_BUCKETS
 * independently-locked maps keyed by page address, so concurrent
 * coherence transactions homed at different tiles do not serialize on
 * one map mutex. Byte access within existing pages is unlocked: a
 * line's backing bytes are only touched while its home shard is held
 * (MemorySystem's lock scheme), and distinct lines occupy disjoint byte
 * ranges.
 */

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Sparse byte-addressable target memory. */
class MainMemory
{
  public:
    static constexpr std::uint64_t PAGE_SIZE = 4096;
    /** Page-table shards (power of two; leaf locks, never nested). */
    static constexpr std::uint64_t NUM_BUCKETS = 64;

    MainMemory()
    {
        for (std::uint64_t i = 0; i < NUM_BUCKETS; ++i)
            buckets_[i].mutex.setInstance(static_cast<std::int64_t>(i));
    }

    /** Copy @p size bytes at @p addr into @p buf. Untouched pages read 0. */
    void read(addr_t addr, void* buf, size_t size) const;

    /** Copy @p size bytes from @p buf into memory at @p addr. */
    void write(addr_t addr, const void* buf, size_t size);

    /** Number of materialized pages (for tests / footprint stats). */
    size_t pagesAllocated() const;

    /** @name Checkpoint serialization (pages in sorted order) @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    struct Page
    {
        std::uint8_t bytes[PAGE_SIZE] = {};
    };

    /** One independently-locked slice of the page table. */
    struct Bucket
    {
        mutable lockdep::OrderedMutex mutex{
            lockdep::LockClass::main_memory_bucket};
        std::unordered_map<addr_t, std::unique_ptr<Page>> pages;
    };

    Bucket& bucketFor(addr_t page_addr) const;
    Page* findPage(addr_t page_addr) const;
    Page& ensurePage(addr_t page_addr);

    mutable std::array<Bucket, NUM_BUCKETS> buckets_;
};

} // namespace graphite
