#include "mem/cache.h"

#include <algorithm>
#include <bit>

#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"

namespace graphite
{

Cache::Cache(std::string name, std::uint64_t size_bytes,
             int associativity, std::uint64_t line_size)
    : name_(std::move(name)),
      capacity_(size_bytes),
      assoc_(associativity),
      lineSize_(line_size)
{
    if (line_size == 0 || !std::has_single_bit(line_size))
        fatal("cache {}: line size {} is not a power of two", name_,
              line_size);
    if (associativity <= 0)
        fatal("cache {}: associativity must be positive", name_);
    if (size_bytes == 0 ||
        size_bytes % (line_size * static_cast<std::uint64_t>(assoc_)) != 0)
        fatal("cache {}: size {} not divisible by line*assoc", name_,
              size_bytes);
    numSets_ = size_bytes / (line_size * assoc_);
    lines_.resize(numSets_ * assoc_);
}

std::uint64_t
Cache::setIndex(addr_t line_addr) const
{
    return (line_addr / lineSize_) % numSets_;
}

CacheLine*
Cache::lookup(addr_t line_addr)
{
    std::uint64_t set = setIndex(line_addr);
    CacheLine* base = &lines_[set * assoc_];
    for (int w = 0; w < assoc_; ++w) {
        if (base[w].valid() && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const CacheLine*
Cache::lookup(addr_t line_addr) const
{
    return const_cast<Cache*>(this)->lookup(line_addr);
}

CacheLine*
Cache::find(addr_t addr)
{
    return lookup(lineAlign(addr));
}

const CacheLine*
Cache::find(addr_t addr) const
{
    return lookup(lineAlign(addr));
}

CacheLine*
Cache::access(addr_t addr, bool is_write)
{
    accesses_.fetch_add(1, std::memory_order_relaxed);
    CacheLine* line = find(addr);
    if (line == nullptr) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    if (is_write && line->state == CacheState::Exclusive) {
        // MESI silent upgrade: the sole clean owner gains write
        // permission without a directory transaction.
        line->state = CacheState::Modified;
    }
    if (is_write && line->state != CacheState::Modified) {
        // Upgrade required: treated as a miss by the caller's protocol
        // logic, but the probe itself found data. Count as miss so
        // write-permission misses show up in the stats.
        misses_.fetch_add(1, std::memory_order_relaxed);
        line->lruStamp = ++lruCounter_;
        return nullptr;
    }
    line->lruStamp = ++lruCounter_;
    return line;
}

bool
Cache::sufficient(const CacheLine* line, bool is_write)
{
    if (line == nullptr || !line->valid())
        return false;
    return !is_write || line->state == CacheState::Modified ||
           line->state == CacheState::Exclusive;
}

CacheProbe
Cache::probe(addr_t addr, bool is_write) const
{
    const CacheLine* line = find(addr);
    if (line == nullptr)
        return CacheProbe::Miss;
    if (sufficient(line, is_write))
        return CacheProbe::Hit;
    return CacheProbe::NeedsUpgrade;
}

std::optional<addr_t>
Cache::peekVictim(addr_t line_addr) const
{
    GRAPHITE_ASSERT(lineAlign(line_addr) == line_addr);
    if (lookup(line_addr) != nullptr)
        return std::nullopt; // already present: insert() is illegal
    std::uint64_t set = setIndex(line_addr);
    const CacheLine* base = &lines_[set * assoc_];
    const CacheLine* victim = nullptr;
    for (int w = 0; w < assoc_; ++w) {
        if (!base[w].valid())
            return std::nullopt; // free way: no eviction
        if (victim == nullptr || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    return victim->lineAddr;
}

std::optional<Eviction>
Cache::insert(addr_t line_addr, CacheState state,
              std::vector<std::uint8_t> data)
{
    GRAPHITE_ASSERT(lineAlign(line_addr) == line_addr);
    GRAPHITE_ASSERT(data.size() == lineSize_);
    GRAPHITE_ASSERT(state != CacheState::Invalid);
    GRAPHITE_ASSERT(lookup(line_addr) == nullptr);

    std::uint64_t set = setIndex(line_addr);
    CacheLine* base = &lines_[set * assoc_];
    CacheLine* victim = nullptr;
    for (int w = 0; w < assoc_; ++w) {
        if (!base[w].valid()) {
            victim = &base[w];
            break;
        }
        if (victim == nullptr || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }

    std::optional<Eviction> evicted;
    if (victim->valid()) {
        ++evictions_;
        evicted = Eviction{victim->lineAddr,
                           victim->state == CacheState::Modified,
                           std::move(victim->data)};
    }
    victim->lineAddr = line_addr;
    victim->state = state;
    victim->lruStamp = ++lruCounter_;
    victim->data = std::move(data);
    return evicted;
}

std::optional<Eviction>
Cache::invalidate(addr_t line_addr)
{
    CacheLine* line = lookup(line_addr);
    if (line == nullptr)
        return std::nullopt;
    ++invalidations_;
    Eviction out{line->lineAddr, line->state == CacheState::Modified,
                 std::move(line->data)};
    line->state = CacheState::Invalid;
    line->data.clear();
    return out;
}

std::optional<std::vector<std::uint8_t>>
Cache::downgrade(addr_t line_addr)
{
    CacheLine* line = lookup(line_addr);
    if (line == nullptr || (line->state != CacheState::Modified &&
                            line->state != CacheState::Exclusive))
        return std::nullopt;
    line->state = CacheState::Shared;
    return line->data; // copy: line keeps its data in Shared state
}

double
Cache::missRate() const
{
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(misses_) /
                     static_cast<double>(accesses_);
}

std::vector<const CacheLine*>
Cache::validLines() const
{
    std::vector<const CacheLine*> out;
    for (const auto& line : lines_) {
        if (line.valid())
            out.push_back(&line);
    }
    return out;
}

void
Cache::saveState(snapshot::SnapshotWriter& w) const
{
    w.u64(static_cast<std::uint64_t>(lines_.size()));
    w.u64(lruCounter_);
    w.u64(accesses_.load(std::memory_order_relaxed));
    w.u64(misses_.load(std::memory_order_relaxed));
    w.u64(evictions_.load(std::memory_order_relaxed));
    w.u64(invalidations_.load(std::memory_order_relaxed));
    for (const CacheLine& line : lines_) {
        w.u64(line.lineAddr);
        w.u8(static_cast<std::uint8_t>(line.state));
        w.u64(line.lruStamp);
        w.bytes(line.data.data(), line.data.size());
    }
}

void
Cache::loadState(snapshot::SnapshotReader& r)
{
    std::uint64_t count = r.u64();
    if (count != lines_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: cache '{}' geometry mismatch ({} lines "
                   "in snapshot, {} configured)",
                   name_, count, lines_.size()));
    lruCounter_ = r.u64();
    accesses_.store(r.u64(), std::memory_order_relaxed);
    misses_.store(r.u64(), std::memory_order_relaxed);
    evictions_.store(r.u64(), std::memory_order_relaxed);
    invalidations_.store(r.u64(), std::memory_order_relaxed);
    for (CacheLine& line : lines_) {
        line.lineAddr = r.u64();
        line.state = static_cast<CacheState>(r.u8());
        line.lruStamp = r.u64();
        std::vector<std::uint8_t> data = r.bytes();
        if (!data.empty() && data.size() != lineSize_)
            throw snapshot::SnapshotError(
                strfmt("snapshot: cache '{}' line data is {} bytes "
                       "(line size {})",
                       name_, data.size(), lineSize_));
        line.data = std::move(data);
    }
}

} // namespace graphite
