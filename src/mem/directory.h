/**
 * @file
 * Directory state for the MSI cache-coherence protocol (paper §3.2, §4.4).
 *
 * "Cache coherence is maintained using a directory-based MSI protocol in
 * which the directory is uniformly distributed across all the tiles."
 * Three sharer-tracking schemes are provided, matching the coherence
 * study of §4.4:
 *
 *  - full-map:            one presence bit per tile [Agarwal et al.];
 *  - Dir_iNB (limited):   i sharer pointers, no broadcast — adding a
 *                         sharer beyond i forces the eviction of an
 *                         existing sharer;
 *  - LimitLESS(i):        i hardware pointers; overflowing sharers are
 *                         kept in a software list at a configurable
 *                         software-trap penalty [Chaiken et al.].
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Global state of a memory line at its home directory. */
enum class DirectoryState : std::uint8_t
{
    Uncached = 0, ///< no cache holds the line
    Shared,       ///< one or more read-only copies
    Modified      ///< exactly one writable copy (the owner)
};

/** Outcome of DirectoryEntry::addSharer(). */
struct AddSharerResult
{
    /** Set when the scheme had to evict an existing sharer to make room
     *  (Dir_iNB); the protocol must invalidate it before proceeding. */
    std::optional<tile_id_t> evicted;
    /** Extra modeled latency (LimitLESS software trap). */
    cycle_t extraLatency = 0;
};

/**
 * Per-line directory entry. Sharer-set representation varies by scheme;
 * state/owner handling is common.
 */
class DirectoryEntry
{
  public:
    virtual ~DirectoryEntry() = default;

    DirectoryState state() const { return state_; }
    void setState(DirectoryState s) { state_ = s; }

    /** Owner tile; only meaningful in Modified state. */
    tile_id_t owner() const { return owner_; }
    void setOwner(tile_id_t t) { owner_ = t; }

    /** Record @p tile as a sharer (see AddSharerResult). */
    virtual AddSharerResult addSharer(tile_id_t tile) = 0;

    /** Remove @p tile from the sharer set (no-op when absent). */
    virtual void removeSharer(tile_id_t tile) = 0;

    /** Drop all sharers. */
    virtual void clearSharers() = 0;

    virtual bool isSharer(tile_id_t tile) const = 0;
    virtual std::vector<tile_id_t> sharers() const = 0;
    virtual size_t numSharers() const = 0;

  private:
    DirectoryState state_ = DirectoryState::Uncached;
    tile_id_t owner_ = INVALID_TILE_ID;
};

/** Scheme selector, parsed from config. */
enum class DirectoryType
{
    FullMap,
    LimitedNoBroadcast,
    Limitless
};

/** Parse "full_map" | "limited_no_broadcast" | "limitless". */
DirectoryType parseDirectoryType(const std::string& name);

/**
 * The distributed directory slice homed on one tile: entries for every
 * line whose home is this tile, created on demand.
 */
class Directory
{
  public:
    /**
     * @param type                  sharer-tracking scheme
     * @param max_sharers           pointer count i for Dir_iNB/LimitLESS
     * @param total_tiles           number of tiles (full-map width)
     * @param software_trap_penalty LimitLESS overflow cost, cycles
     */
    Directory(DirectoryType type, int max_sharers, tile_id_t total_tiles,
              cycle_t software_trap_penalty);

    /** Get or create the entry for @p line_addr. */
    DirectoryEntry& entry(addr_t line_addr);

    /** @return the entry, or nullptr if never touched. */
    DirectoryEntry* peek(addr_t line_addr);

    /** Number of allocated entries. */
    size_t size() const { return entries_.size(); }

    DirectoryType type() const { return type_; }

    /** @name Statistics @{ */
    stat_t pointerEvictions() const { return pointerEvictions_; }
    stat_t softwareTraps() const { return softwareTraps_; }
    /** @} */

    /**
     * @name Checkpoint serialization
     * Entries are saved sorted by line address; restore rebuilds each
     * sharer set by re-adding sharers in sharers() order, which
     * reproduces every scheme's internal representation exactly
     * (full-map bits, Dir_iNB FIFO pointer order, LimitLESS hw-then-sw
     * split), then overwrites the two stat counters to undo the re-add
     * side effects.
     * @{
     */
    void saveState(snapshot::SnapshotWriter& w) const;
    /** @throws snapshot::SnapshotError on scheme mismatch. */
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    friend class LimitedDirectoryEntry;
    friend class LimitlessDirectoryEntry;

    std::unique_ptr<DirectoryEntry> makeEntry();

    DirectoryType type_;
    int maxSharers_;
    tile_id_t totalTiles_;
    cycle_t trapPenalty_;
    std::unordered_map<addr_t, std::unique_ptr<DirectoryEntry>> entries_;
    stat_t pointerEvictions_ = 0;
    stat_t softwareTraps_ = 0;
};

} // namespace graphite
