#include "common/lockdep.h"
#include "mem/main_memory.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "snapshot/snapshot.h"

namespace graphite
{

MainMemory::Bucket&
MainMemory::bucketFor(addr_t page_addr) const
{
    // Consecutive pages land in different buckets so a hot region still
    // spreads across locks.
    return buckets_[(page_addr / PAGE_SIZE) % NUM_BUCKETS];
}

MainMemory::Page*
MainMemory::findPage(addr_t page_addr) const
{
    Bucket& b = bucketFor(page_addr);
    lockdep::Guard lock(b.mutex);
    auto it = b.pages.find(page_addr);
    return it == b.pages.end() ? nullptr : it->second.get();
}

MainMemory::Page&
MainMemory::ensurePage(addr_t page_addr)
{
    Bucket& b = bucketFor(page_addr);
    lockdep::Guard lock(b.mutex);
    auto& slot = b.pages[page_addr];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

void
MainMemory::read(addr_t addr, void* buf, size_t size) const
{
    auto* out = static_cast<std::uint8_t*>(buf);
    while (size > 0) {
        addr_t page_addr = addr & ~(PAGE_SIZE - 1);
        std::uint64_t off = addr - page_addr;
        size_t chunk =
            std::min<std::uint64_t>(size, PAGE_SIZE - off);
        if (const Page* page = findPage(page_addr)) {
            std::memcpy(out, page->bytes + off, chunk);
        } else {
            std::memset(out, 0, chunk);
        }
        out += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
MainMemory::write(addr_t addr, const void* buf, size_t size)
{
    const auto* in = static_cast<const std::uint8_t*>(buf);
    while (size > 0) {
        addr_t page_addr = addr & ~(PAGE_SIZE - 1);
        std::uint64_t off = addr - page_addr;
        size_t chunk =
            std::min<std::uint64_t>(size, PAGE_SIZE - off);
        Page& page = ensurePage(page_addr);
        std::memcpy(page.bytes + off, in, chunk);
        in += chunk;
        addr += chunk;
        size -= chunk;
    }
}

size_t
MainMemory::pagesAllocated() const
{
    size_t total = 0;
    for (const Bucket& b : buckets_) {
        lockdep::Guard lock(b.mutex);
        total += b.pages.size();
    }
    return total;
}

void
MainMemory::saveState(snapshot::SnapshotWriter& w) const
{
    // Sorted order: re-serializing restored memory is byte-identical.
    std::map<addr_t, const Page*> sorted;
    for (const Bucket& b : buckets_) {
        lockdep::Guard lock(b.mutex);
        for (const auto& [addr, page] : b.pages)
            sorted.emplace(addr, page.get());
    }
    w.u64(static_cast<std::uint64_t>(sorted.size()));
    for (const auto& [addr, page] : sorted) {
        w.u64(addr);
        w.bytes(page->bytes, PAGE_SIZE);
    }
}

void
MainMemory::loadState(snapshot::SnapshotReader& r)
{
    for (Bucket& b : buckets_) {
        lockdep::Guard lock(b.mutex);
        b.pages.clear();
    }
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        addr_t addr = r.u64();
        Page& page = ensurePage(addr);
        r.bytesInto(page.bytes, PAGE_SIZE);
    }
}

} // namespace graphite
