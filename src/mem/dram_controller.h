/**
 * @file
 * DRAM controller timing model.
 *
 * One controller per tile (paper §4.4: "the default target architecture
 * places a memory controller at every tile, evenly splitting total
 * off-chip bandwidth. This means that as the number of target tiles
 * increases, the bandwidth at each controller decreases proportionally,
 * and the service time for a memory request increases. Queueing delay
 * also increases by statically partitioning the bandwidth into separate
 * queues").
 *
 * Latency of one access = fixed DRAM latency + service time
 * (bytes / per-controller bandwidth) + queueing delay from the
 * lax-compatible QueueModel (§3.6.1).
 */

#pragma once

#include <memory>

#include "common/fixed_types.h"
#include "common/stats.h"
#include "network/queue_model.h"

namespace graphite
{

class GlobalProgress;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Timing model of a single tile's memory controller. */
class DramController
{
  public:
    /**
     * @param latency_cycles      device access latency
     * @param bytes_per_cycle     this controller's share of off-chip
     *                            bandwidth, in bytes per target cycle
     * @param progress            global-progress estimator for the queue
     *                            model (nullptr disables queue modeling)
     */
    DramController(cycle_t latency_cycles, double bytes_per_cycle,
                   const GlobalProgress* progress,
                   cycle_t outlier_window = 100000,
                   cycle_t max_backlog = 10000);

    /** Latency decomposition of one access; queue + service == total. */
    struct Breakdown
    {
        cycle_t total = 0;
        /** Queueing delay at the controller. */
        cycle_t queue = 0;
        /** Device latency plus bandwidth service time. */
        cycle_t service = 0;
    };

    /**
     * Model one access of @p bytes arriving at @p arrival_time.
     * @return total latency in cycles (device + service + queueing).
     */
    cycle_t access(cycle_t arrival_time, size_t bytes);

    /** Like access() but reporting the decomposition. Same totals. */
    Breakdown accessEx(cycle_t arrival_time, size_t bytes);

    /** @name Statistics @{ */
    stat_t accesses() const { return accesses_; }
    stat_t totalQueueDelay() const { return queue_.totalQueueDelay(); }
    stat_t totalServiceTime() const { return serviceTime_; }
    stat_t clampedArrivals() const { return queue_.clampedArrivals(); }
    stat_t saturations() const { return queue_.saturations(); }
    /** @} */

    /** @name Checkpoint serialization @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    cycle_t latency_;
    double bytesPerCycle_;
    bool queueEnabled_;
    QueueModel queue_;
    stat_t accesses_ = 0;
    stat_t serviceTime_ = 0;
};

} // namespace graphite
