#include "mem/directory.h"

#include <algorithm>
#include <map>

#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"

namespace graphite
{

namespace
{

/** Full bit-vector of sharers (one bit per tile). */
class FullMapDirectoryEntry : public DirectoryEntry
{
  public:
    explicit FullMapDirectoryEntry(tile_id_t total_tiles)
        : bits_(total_tiles, false)
    {}

    AddSharerResult
    addSharer(tile_id_t tile) override
    {
        bits_[tile] = true;
        return {};
    }

    void removeSharer(tile_id_t tile) override { bits_[tile] = false; }

    void
    clearSharers() override
    {
        std::fill(bits_.begin(), bits_.end(), false);
    }

    bool isSharer(tile_id_t tile) const override { return bits_[tile]; }

    std::vector<tile_id_t>
    sharers() const override
    {
        std::vector<tile_id_t> out;
        for (tile_id_t t = 0; t < static_cast<tile_id_t>(bits_.size());
             ++t) {
            if (bits_[t])
                out.push_back(t);
        }
        return out;
    }

    size_t
    numSharers() const override
    {
        return std::count(bits_.begin(), bits_.end(), true);
    }

  private:
    std::vector<bool> bits_;
};

} // namespace

/**
 * Dir_iNB: at most i pointers; "no broadcast" means an (i+1)-th sharer
 * can only be admitted by invalidating one of the existing i.
 */
class LimitedDirectoryEntry : public DirectoryEntry
{
  public:
    LimitedDirectoryEntry(int max_sharers, Directory* parent)
        : max_(max_sharers), parent_(parent)
    {
        ptrs_.reserve(max_);
    }

    AddSharerResult
    addSharer(tile_id_t tile) override
    {
        if (isSharer(tile))
            return {};
        if (static_cast<int>(ptrs_.size()) < max_) {
            ptrs_.push_back(tile);
            return {};
        }
        // Evict the oldest pointer (FIFO), per Dir_iNB semantics.
        tile_id_t victim = ptrs_.front();
        ptrs_.erase(ptrs_.begin());
        ptrs_.push_back(tile);
        ++parent_->pointerEvictions_;
        return {victim, 0};
    }

    void
    removeSharer(tile_id_t tile) override
    {
        auto it = std::find(ptrs_.begin(), ptrs_.end(), tile);
        if (it != ptrs_.end())
            ptrs_.erase(it);
    }

    void clearSharers() override { ptrs_.clear(); }

    bool
    isSharer(tile_id_t tile) const override
    {
        return std::find(ptrs_.begin(), ptrs_.end(), tile) != ptrs_.end();
    }

    std::vector<tile_id_t> sharers() const override { return ptrs_; }

    size_t numSharers() const override { return ptrs_.size(); }

  private:
    int max_;
    Directory* parent_;
    std::vector<tile_id_t> ptrs_;
};

/**
 * LimitLESS(i): i hardware pointers plus a software-managed overflow
 * list; overflow handling charges the software-trap penalty.
 */
class LimitlessDirectoryEntry : public DirectoryEntry
{
  public:
    LimitlessDirectoryEntry(int hw_pointers, cycle_t trap_penalty,
                            Directory* parent)
        : max_(hw_pointers), trapPenalty_(trap_penalty), parent_(parent)
    {}

    AddSharerResult
    addSharer(tile_id_t tile) override
    {
        if (isSharer(tile))
            return {};
        if (static_cast<int>(hw_.size()) < max_) {
            hw_.push_back(tile);
            return {};
        }
        // Software trap: the sharer is recorded, at a cost.
        sw_.push_back(tile);
        ++parent_->softwareTraps_;
        return {std::nullopt, trapPenalty_};
    }

    void
    removeSharer(tile_id_t tile) override
    {
        auto it = std::find(hw_.begin(), hw_.end(), tile);
        if (it != hw_.end()) {
            hw_.erase(it);
            // Promote a software-list sharer into the freed pointer.
            if (!sw_.empty()) {
                hw_.push_back(sw_.back());
                sw_.pop_back();
            }
            return;
        }
        it = std::find(sw_.begin(), sw_.end(), tile);
        if (it != sw_.end())
            sw_.erase(it);
    }

    void
    clearSharers() override
    {
        hw_.clear();
        sw_.clear();
    }

    bool
    isSharer(tile_id_t tile) const override
    {
        return std::find(hw_.begin(), hw_.end(), tile) != hw_.end() ||
               std::find(sw_.begin(), sw_.end(), tile) != sw_.end();
    }

    std::vector<tile_id_t>
    sharers() const override
    {
        std::vector<tile_id_t> out = hw_;
        out.insert(out.end(), sw_.begin(), sw_.end());
        return out;
    }

    size_t numSharers() const override { return hw_.size() + sw_.size(); }

  private:
    int max_;
    cycle_t trapPenalty_;
    Directory* parent_;
    std::vector<tile_id_t> hw_;
    std::vector<tile_id_t> sw_;
};

DirectoryType
parseDirectoryType(const std::string& name)
{
    if (name == "full_map")
        return DirectoryType::FullMap;
    if (name == "limited_no_broadcast")
        return DirectoryType::LimitedNoBroadcast;
    if (name == "limitless")
        return DirectoryType::Limitless;
    fatal("unknown directory type '{}'", name);
}

Directory::Directory(DirectoryType type, int max_sharers,
                     tile_id_t total_tiles, cycle_t software_trap_penalty)
    : type_(type),
      maxSharers_(max_sharers),
      totalTiles_(total_tiles),
      trapPenalty_(software_trap_penalty)
{
    if (max_sharers <= 0 && type != DirectoryType::FullMap)
        fatal("directory: max_sharers must be positive for limited "
              "schemes (got {})",
              max_sharers);
}

std::unique_ptr<DirectoryEntry>
Directory::makeEntry()
{
    switch (type_) {
      case DirectoryType::FullMap:
        return std::make_unique<FullMapDirectoryEntry>(totalTiles_);
      case DirectoryType::LimitedNoBroadcast:
        return std::make_unique<LimitedDirectoryEntry>(maxSharers_, this);
      case DirectoryType::Limitless:
        return std::make_unique<LimitlessDirectoryEntry>(
            maxSharers_, trapPenalty_, this);
    }
    panic("bad directory type");
}

DirectoryEntry&
Directory::entry(addr_t line_addr)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        it = entries_.emplace(line_addr, makeEntry()).first;
    return *it->second;
}

DirectoryEntry*
Directory::peek(addr_t line_addr)
{
    auto it = entries_.find(line_addr);
    return it == entries_.end() ? nullptr : it->second.get();
}

void
Directory::saveState(snapshot::SnapshotWriter& w) const
{
    w.u8(static_cast<std::uint8_t>(type_));
    w.u64(pointerEvictions_);
    w.u64(softwareTraps_);
    std::map<addr_t, const DirectoryEntry*> sorted;
    for (const auto& [addr, e] : entries_)
        sorted.emplace(addr, e.get());
    w.u64(static_cast<std::uint64_t>(sorted.size()));
    for (const auto& [addr, e] : sorted) {
        w.u64(addr);
        w.u8(static_cast<std::uint8_t>(e->state()));
        w.i64(e->owner());
        std::vector<tile_id_t> sh = e->sharers();
        w.u64(static_cast<std::uint64_t>(sh.size()));
        for (tile_id_t t : sh)
            w.i64(t);
    }
}

void
Directory::loadState(snapshot::SnapshotReader& r)
{
    auto type = static_cast<DirectoryType>(r.u8());
    if (type != type_)
        throw snapshot::SnapshotError(
            strfmt("snapshot: directory scheme mismatch (snapshot {}, "
                   "configured {})",
                   static_cast<int>(type), static_cast<int>(type_)));
    stat_t pointer_evictions = r.u64();
    stat_t software_traps = r.u64();
    entries_.clear();
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        addr_t addr = r.u64();
        DirectoryEntry& e = entry(addr);
        e.setState(static_cast<DirectoryState>(r.u8()));
        e.setOwner(static_cast<tile_id_t>(r.i64()));
        std::uint64_t sharers = r.u64();
        for (std::uint64_t s = 0; s < sharers; ++s)
            e.addSharer(static_cast<tile_id_t>(r.i64()));
    }
    // Re-adding sharers bumps the overflow counters; the snapshot's
    // values are authoritative.
    pointerEvictions_ = pointer_evictions;
    softwareTraps_ = software_traps;
}

} // namespace graphite
