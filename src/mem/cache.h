/**
 * @file
 * Set-associative cache with functional data storage.
 *
 * Graphite's memory system deliberately fuses function and modeling
 * (paper §3.2): "Graphite addresses this problem by modifying the software
 * data structures used for ensuring functional correctness to operate
 * similar to the memory architecture of the target machine... this
 * strategy automatically helps verify the correctness of complex
 * hierarchies and protocols". Accordingly each cache line here holds the
 * actual bytes of the simulated address space; a coherence bug corrupts
 * application results, making the protocol self-verifying.
 *
 * Thread-safety: all mutation happens under the owning tile's lock
 * (MemorySystem's two-level locking scheme; see DESIGN.md
 * §"Coherence-transaction serialization"); Cache itself is not
 * internally locked. The statistic
 * counters are relaxed atomics so that gauges and the interval metrics
 * sampler can read them while other threads mutate.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Coherence line states (MSI, plus Exclusive when MESI is enabled). */
enum class CacheState : std::uint8_t
{
    Invalid = 0,
    Shared,
    /** Sole clean copy (MESI only); writes upgrade silently. */
    Exclusive,
    Modified
};

/** Why a line left the cache — input to the miss classifier. */
enum class EvictReason : std::uint8_t
{
    None = 0,    ///< line was never evicted
    Replacement, ///< capacity/conflict victim
    Invalidation,///< coherence invalidation by a remote writer
    Downgrade    ///< lost write permission but stayed Shared
};

/** One cache line: tag, state, and functional data. */
struct CacheLine
{
    addr_t lineAddr = 0; ///< address of first byte, line-aligned
    CacheState state = CacheState::Invalid;
    std::uint64_t lruStamp = 0;
    std::vector<std::uint8_t> data;

    bool valid() const { return state != CacheState::Invalid; }
};

/** Result of an eviction: the victim line's identity and contents. */
struct Eviction
{
    addr_t lineAddr = 0;
    bool dirty = false;
    std::vector<std::uint8_t> data;
};

/** Outcome of a side-effect-free permission probe (see Cache::probe). */
enum class CacheProbe : std::uint8_t
{
    Miss,        ///< line absent: a full coherence transaction is needed
    Hit,         ///< present with sufficient permission: no transaction
    NeedsUpgrade ///< present Shared, write wanted: upgrade transaction
};

/**
 * A single cache level (used for L1I, L1D and L2), LRU replacement,
 * configurable size / associativity / line size.
 */
class Cache
{
  public:
    /**
     * @param name          stats label ("l1_dcache", ...)
     * @param size_bytes    total capacity
     * @param associativity ways per set
     * @param line_size     bytes per line (power of two)
     */
    Cache(std::string name, std::uint64_t size_bytes, int associativity,
          std::uint64_t line_size);

    /** Line-align an address. */
    addr_t lineAlign(addr_t a) const { return a & ~(lineSize_ - 1); }

    /** @return the line holding @p addr, or nullptr on miss. */
    CacheLine* find(addr_t addr);
    const CacheLine* find(addr_t addr) const;

    /**
     * Probe for statistics: records a hit or miss.
     * @return the line on hit, nullptr on miss.
     */
    CacheLine* access(addr_t addr, bool is_write);

    /**
     * Permission probe with no side effects (no stats, no LRU touch, no
     * MESI silent upgrade): distinguishes "hit with sufficient state"
     * from "needs a coherence transaction". Exclusive counts as
     * sufficient for writes (the silent-upgrade privilege).
     */
    CacheProbe probe(addr_t addr, bool is_write) const;

    /**
     * @return true when @p line (possibly nullptr) grants the access
     * without a coherence transaction — any valid state for reads,
     * Modified or Exclusive for writes.
     */
    static bool sufficient(const CacheLine* line, bool is_write);

    /**
     * The line insert(@p line_addr, ...) would evict right now, or
     * nullopt when a free way exists (or the line is already present).
     * Used to pre-compute the victim's home shard before a transaction
     * acquires its locks; must mirror insert()'s victim choice exactly.
     */
    std::optional<addr_t> peekVictim(addr_t line_addr) const;

    /**
     * Insert a line (must not already be present).
     * @param line_addr line-aligned address
     * @param state     initial MSI state
     * @param data      exactly lineSize() bytes
     * @return the replaced victim, if one was valid.
     */
    std::optional<Eviction> insert(addr_t line_addr, CacheState state,
                                   std::vector<std::uint8_t> data);

    /**
     * Remove the line (coherence invalidation).
     * @return the line's data and dirtiness if it was present.
     */
    std::optional<Eviction> invalidate(addr_t line_addr);

    /**
     * Downgrade Modified/Exclusive -> Shared.
     * @return the line's data if it held ownership.
     */
    std::optional<std::vector<std::uint8_t>> downgrade(addr_t line_addr);

    /** @name Geometry @{ */
    std::uint64_t lineSize() const { return lineSize_; }
    std::uint64_t numSets() const { return numSets_; }
    int associativity() const { return assoc_; }
    std::uint64_t capacity() const { return capacity_; }
    /** @} */

    /** @name Statistics (readable concurrently with mutation) @{ */
    const std::string& name() const { return name_; }
    stat_t accesses() const
    {
        return accesses_.load(std::memory_order_relaxed);
    }
    stat_t misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }
    stat_t hits() const { return accesses() - misses(); }
    stat_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    stat_t invalidations() const
    {
        return invalidations_.load(std::memory_order_relaxed);
    }
    double missRate() const;
    /** @} */

    /** Enumerate valid lines (for invariant checks in tests). */
    std::vector<const CacheLine*> validLines() const;

    /** @name Checkpoint serialization (caller holds the tile lock) @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    /** @throws snapshot::SnapshotError on geometry mismatch. */
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    std::uint64_t setIndex(addr_t line_addr) const;
    CacheLine* lookup(addr_t line_addr);
    const CacheLine* lookup(addr_t line_addr) const;

    std::string name_;
    std::uint64_t capacity_;
    int assoc_;
    std::uint64_t lineSize_;
    std::uint64_t numSets_;
    std::vector<CacheLine> lines_; ///< numSets_ * assoc_, set-major
    std::uint64_t lruCounter_ = 0;

    atomic_stat_t accesses_{0};
    atomic_stat_t misses_{0};
    atomic_stat_t evictions_{0};
    atomic_stat_t invalidations_{0};
};

} // namespace graphite
