#include "perf/core_model.h"

#include <algorithm>

#include "common/config.h"
#include "common/log.h"
#include "snapshot/snapshot.h"

namespace graphite
{

namespace
{

void
saveSlotRing(snapshot::SnapshotWriter& w,
             const std::vector<cycle_t>& slots, size_t next)
{
    w.u64(static_cast<std::uint64_t>(slots.size()));
    for (cycle_t c : slots)
        w.u64(c);
    w.u64(static_cast<std::uint64_t>(next));
}

/**
 * Restore a slot ring, tolerating a different configured size: a
 * checkpoint taken under one load-queue/store-buffer depth may be
 * forked into sweeps with different timing knobs, so copy what fits
 * (oldest-first from the cursor) instead of rejecting the snapshot.
 */
void
loadSlotRing(snapshot::SnapshotReader& r, std::vector<cycle_t>& slots,
             size_t& next)
{
    std::uint64_t saved_size = r.u64();
    // Sanity bound so a corrupted-but-checksummed count surfaces as a
    // clean SnapshotError instead of a giant allocation.
    if (saved_size > (1u << 20))
        throw snapshot::SnapshotError(
            strfmt("snapshot: implausible slot ring size {}", saved_size));
    std::vector<cycle_t> saved(saved_size);
    for (cycle_t& c : saved)
        c = r.u64();
    std::uint64_t saved_next = r.u64();

    if (saved_size == slots.size()) {
        slots = std::move(saved);
        next = static_cast<size_t>(saved_next);
        return;
    }
    std::fill(slots.begin(), slots.end(), 0);
    size_t n = std::min<size_t>(saved.size(), slots.size());
    // Keep the youngest n completion times; the cursor points at the
    // oldest slot, so walk backwards from it.
    for (size_t i = 0; i < n; ++i) {
        size_t src = (saved_next + saved.size() - 1 - i) % saved.size();
        size_t dst = (slots.size() - 1 - i) % slots.size();
        slots[dst] = saved[src];
    }
    next = 0;
}

} // namespace

std::string_view
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int_alu";
      case InstrClass::IntMul: return "int_mul";
      case InstrClass::IntDiv: return "int_div";
      case InstrClass::FpAdd:  return "fp_add";
      case InstrClass::FpMul:  return "fp_mul";
      case InstrClass::FpDiv:  return "fp_div";
      case InstrClass::Branch: return "branch";
      case InstrClass::Load:   return "load";
      case InstrClass::Store:  return "store";
      default: panic("bad instruction class {}", static_cast<int>(c));
    }
}

InstructionCosts
InstructionCosts::defaults()
{
    InstructionCosts c{};
    c.cost[static_cast<int>(InstrClass::IntAlu)] = 1;
    c.cost[static_cast<int>(InstrClass::IntMul)] = 3;
    c.cost[static_cast<int>(InstrClass::IntDiv)] = 18;
    c.cost[static_cast<int>(InstrClass::FpAdd)] = 3;
    c.cost[static_cast<int>(InstrClass::FpMul)] = 5;
    c.cost[static_cast<int>(InstrClass::FpDiv)] = 24;
    c.cost[static_cast<int>(InstrClass::Branch)] = 1;
    // Load/Store issue cost; the memory latency is added separately.
    c.cost[static_cast<int>(InstrClass::Load)] = 1;
    c.cost[static_cast<int>(InstrClass::Store)] = 1;
    return c;
}

InstructionCosts
InstructionCosts::fromConfig(const Config& cfg)
{
    InstructionCosts c = defaults();
    for (int i = 0; i < NUM_INSTR_CLASSES; ++i) {
        std::string key = "perf_model/core/cost/";
        key += instrClassName(static_cast<InstrClass>(i));
        c.cost[i] = cfg.getInt(key, c.cost[i]);
    }
    return c;
}

CoreModel::CoreModel(tile_id_t tile, const Config& cfg)
    : tile_(tile),
      costs_(InstructionCosts::fromConfig(cfg)),
      bp_(BranchPredictor::create(
          cfg.getString("perf_model/branch_predictor/type", "two_bit"),
          cfg.getInt("perf_model/branch_predictor/size", 1024))),
      mispredictPenalty_(
          cfg.getInt("perf_model/branch_predictor/mispredict_penalty",
                     14)),
      loadSlots_(std::max<std::int64_t>(
                     1, cfg.getInt("perf_model/core/load_queue_size", 8)),
                 0),
      storeSlots_(
          std::max<std::int64_t>(
              1, cfg.getInt("perf_model/core/store_buffer_size", 8)),
          0)
{
    // Only the paper's in-order core is modeled; reject a config that
    // silently asks for something else.
    std::string core_type =
        cfg.getString("perf_model/core/type", "in_order");
    if (core_type != "in_order")
        fatal("perf_model/core/type must be 'in_order', got '{}'",
              core_type);
}

void
CoreModel::advance(cycle_t cycles)
{
    clock_.fetch_add(cycles, std::memory_order_relaxed);
}

void
CoreModel::executeInstructions(InstrClass c, std::uint64_t count)
{
    GRAPHITE_ASSERT(c != InstrClass::Load && c != InstrClass::Store &&
                    c != InstrClass::Branch);
    instructions_ += count;
    perClass_[static_cast<int>(c)] += count;
    advance(costs_.cost[static_cast<int>(c)] * count);
}

void
CoreModel::executeBranch(addr_t site, bool taken)
{
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Branch)];
    cycle_t cost = costs_.cost[static_cast<int>(InstrClass::Branch)];
    if (!bp_->predictAndTrain(site, taken))
        cost += mispredictPenalty_;
    advance(cost);
}

void
CoreModel::executeLoad(cycle_t latency)
{
    GRAPHITE_ASSERT(latency < (1ull << 40));
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Load)];

    cycle_t now = cycle() + costs_.cost[static_cast<int>(InstrClass::Load)];
    // Structural hazard: the oldest in-flight load must have completed
    // before a new load-queue slot frees up.
    cycle_t& slot = loadSlots_[nextLoadSlot_];
    nextLoadSlot_ = (nextLoadSlot_ + 1) % loadSlots_.size();
    cycle_t start = now;
    if (slot > now) {
        start = slot;
        ++loadStalls_;
    }
    cycle_t done = start + latency;
    slot = done;
    // In-order core consumes the loaded value: clock advances to
    // completion.
    clock_.store(done, std::memory_order_relaxed);
}

void
CoreModel::executeStore(cycle_t latency)
{
    GRAPHITE_ASSERT(latency < (1ull << 40));
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Store)];

    cycle_t now =
        cycle() + costs_.cost[static_cast<int>(InstrClass::Store)];
    cycle_t& slot = storeSlots_[nextStoreSlot_];
    nextStoreSlot_ = (nextStoreSlot_ + 1) % storeSlots_.size();
    cycle_t start = now;
    if (slot > now) {
        // Store buffer full: stall the core until the oldest entry
        // drains.
        start = slot;
        ++storeStalls_;
        clock_.store(slot, std::memory_order_relaxed);
    } else {
        clock_.store(now, std::memory_order_relaxed);
    }
    // The store itself completes in the background.
    slot = start + latency;
}

void
CoreModel::executePseudo(PseudoInstr p, cycle_t cost)
{
    GRAPHITE_ASSERT(cost < (1ull << 40));
    switch (p) {
      case PseudoInstr::Spawn:
      case PseudoInstr::MessageReceive:
        advance(cost);
        break;
      case PseudoInstr::SyncWait:
        syncWaitCycles_ += cost;
        advance(cost);
        break;
      default:
        panic("bad pseudo instruction {}", static_cast<int>(p));
    }
}

void
CoreModel::forwardClock(cycle_t t)
{
    // Monotonic max; only this tile's thread writes, so a simple
    // compare-and-store suffices.
    if (t > cycle())
        clock_.store(t, std::memory_order_relaxed);
}

void
CoreModel::addLatency(cycle_t cycles)
{
    advance(cycles);
}

stat_t
CoreModel::instructionsOfClass(InstrClass c) const
{
    return perClass_[static_cast<int>(c)];
}

void
CoreModel::saveState(snapshot::SnapshotWriter& w) const
{
    w.u64(clock_.load(std::memory_order_relaxed));
    bp_->saveState(w);
    saveSlotRing(w, loadSlots_, nextLoadSlot_);
    saveSlotRing(w, storeSlots_, nextStoreSlot_);
    w.u64(instructions_);
    for (stat_t s : perClass_)
        w.u64(s);
    w.u64(loadStalls_);
    w.u64(storeStalls_);
    w.u64(syncWaitCycles_);
}

void
CoreModel::loadState(snapshot::SnapshotReader& r)
{
    clock_.store(r.u64(), std::memory_order_relaxed);
    bp_->loadState(r);
    loadSlotRing(r, loadSlots_, nextLoadSlot_);
    loadSlotRing(r, storeSlots_, nextStoreSlot_);
    instructions_ = r.u64();
    for (stat_t& s : perClass_)
        s = r.u64();
    loadStalls_ = r.u64();
    storeStalls_ = r.u64();
    syncWaitCycles_ = r.u64();
}

} // namespace graphite
