#include "perf/core_model.h"

#include <algorithm>

#include "common/config.h"
#include "common/log.h"

namespace graphite
{

std::string_view
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int_alu";
      case InstrClass::IntMul: return "int_mul";
      case InstrClass::IntDiv: return "int_div";
      case InstrClass::FpAdd:  return "fp_add";
      case InstrClass::FpMul:  return "fp_mul";
      case InstrClass::FpDiv:  return "fp_div";
      case InstrClass::Branch: return "branch";
      case InstrClass::Load:   return "load";
      case InstrClass::Store:  return "store";
      default: panic("bad instruction class {}", static_cast<int>(c));
    }
}

InstructionCosts
InstructionCosts::defaults()
{
    InstructionCosts c{};
    c.cost[static_cast<int>(InstrClass::IntAlu)] = 1;
    c.cost[static_cast<int>(InstrClass::IntMul)] = 3;
    c.cost[static_cast<int>(InstrClass::IntDiv)] = 18;
    c.cost[static_cast<int>(InstrClass::FpAdd)] = 3;
    c.cost[static_cast<int>(InstrClass::FpMul)] = 5;
    c.cost[static_cast<int>(InstrClass::FpDiv)] = 24;
    c.cost[static_cast<int>(InstrClass::Branch)] = 1;
    // Load/Store issue cost; the memory latency is added separately.
    c.cost[static_cast<int>(InstrClass::Load)] = 1;
    c.cost[static_cast<int>(InstrClass::Store)] = 1;
    return c;
}

InstructionCosts
InstructionCosts::fromConfig(const Config& cfg)
{
    InstructionCosts c = defaults();
    for (int i = 0; i < NUM_INSTR_CLASSES; ++i) {
        std::string key = "perf_model/core/cost/";
        key += instrClassName(static_cast<InstrClass>(i));
        c.cost[i] = cfg.getInt(key, c.cost[i]);
    }
    return c;
}

CoreModel::CoreModel(tile_id_t tile, const Config& cfg)
    : tile_(tile),
      costs_(InstructionCosts::fromConfig(cfg)),
      bp_(BranchPredictor::create(
          cfg.getString("perf_model/branch_predictor/type", "two_bit"),
          cfg.getInt("perf_model/branch_predictor/size", 1024))),
      mispredictPenalty_(
          cfg.getInt("perf_model/branch_predictor/mispredict_penalty",
                     14)),
      loadSlots_(std::max<std::int64_t>(
                     1, cfg.getInt("perf_model/core/load_queue_size", 8)),
                 0),
      storeSlots_(
          std::max<std::int64_t>(
              1, cfg.getInt("perf_model/core/store_buffer_size", 8)),
          0)
{
}

void
CoreModel::advance(cycle_t cycles)
{
    clock_.fetch_add(cycles, std::memory_order_relaxed);
}

void
CoreModel::executeInstructions(InstrClass c, std::uint64_t count)
{
    GRAPHITE_ASSERT(c != InstrClass::Load && c != InstrClass::Store &&
                    c != InstrClass::Branch);
    instructions_ += count;
    perClass_[static_cast<int>(c)] += count;
    advance(costs_.cost[static_cast<int>(c)] * count);
}

void
CoreModel::executeBranch(addr_t site, bool taken)
{
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Branch)];
    cycle_t cost = costs_.cost[static_cast<int>(InstrClass::Branch)];
    if (!bp_->predictAndTrain(site, taken))
        cost += mispredictPenalty_;
    advance(cost);
}

void
CoreModel::executeLoad(cycle_t latency)
{
    GRAPHITE_ASSERT(latency < (1ull << 40));
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Load)];

    cycle_t now = cycle() + costs_.cost[static_cast<int>(InstrClass::Load)];
    // Structural hazard: the oldest in-flight load must have completed
    // before a new load-queue slot frees up.
    cycle_t& slot = loadSlots_[nextLoadSlot_];
    nextLoadSlot_ = (nextLoadSlot_ + 1) % loadSlots_.size();
    cycle_t start = now;
    if (slot > now) {
        start = slot;
        ++loadStalls_;
    }
    cycle_t done = start + latency;
    slot = done;
    // In-order core consumes the loaded value: clock advances to
    // completion.
    clock_.store(done, std::memory_order_relaxed);
}

void
CoreModel::executeStore(cycle_t latency)
{
    GRAPHITE_ASSERT(latency < (1ull << 40));
    ++instructions_;
    ++perClass_[static_cast<int>(InstrClass::Store)];

    cycle_t now =
        cycle() + costs_.cost[static_cast<int>(InstrClass::Store)];
    cycle_t& slot = storeSlots_[nextStoreSlot_];
    nextStoreSlot_ = (nextStoreSlot_ + 1) % storeSlots_.size();
    cycle_t start = now;
    if (slot > now) {
        // Store buffer full: stall the core until the oldest entry
        // drains.
        start = slot;
        ++storeStalls_;
        clock_.store(slot, std::memory_order_relaxed);
    } else {
        clock_.store(now, std::memory_order_relaxed);
    }
    // The store itself completes in the background.
    slot = start + latency;
}

void
CoreModel::executePseudo(PseudoInstr p, cycle_t cost)
{
    GRAPHITE_ASSERT(cost < (1ull << 40));
    switch (p) {
      case PseudoInstr::Spawn:
      case PseudoInstr::MessageReceive:
        advance(cost);
        break;
      case PseudoInstr::SyncWait:
        syncWaitCycles_ += cost;
        advance(cost);
        break;
      default:
        panic("bad pseudo instruction {}", static_cast<int>(p));
    }
}

void
CoreModel::forwardClock(cycle_t t)
{
    // Monotonic max; only this tile's thread writes, so a simple
    // compare-and-store suffices.
    if (t > cycle())
        clock_.store(t, std::memory_order_relaxed);
}

void
CoreModel::addLatency(cycle_t cycles)
{
    advance(cycles);
}

stat_t
CoreModel::instructionsOfClass(InstrClass c) const
{
    return perClass_[static_cast<int>(c)];
}

} // namespace graphite
