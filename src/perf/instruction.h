/**
 * @file
 * Instruction classes consumed by the core performance model (paper §3.1).
 *
 * The core model follows a producer-consumer design: the front end (in the
 * paper, Pin; here, the instrumentation API) produces a stream of
 * instruction events; other subsystems produce *pseudo-instructions* for
 * unusual events ("message receive", "spawn", ...). Arithmetic executes
 * natively (direct execution) — only the *class and count* of executed
 * instructions reach the model.
 */

#pragma once

#include <cstdint>
#include <string_view>

namespace graphite
{

/** Modeled instruction classes. */
enum class InstrClass : std::uint8_t
{
    IntAlu = 0, ///< integer add/sub/logical/shift
    IntMul,     ///< integer multiply
    IntDiv,     ///< integer divide
    FpAdd,      ///< floating add/sub/compare
    FpMul,      ///< floating multiply
    FpDiv,      ///< floating divide / sqrt
    Branch,     ///< conditional/unconditional branch
    Load,       ///< memory read (latency supplied by the memory model)
    Store,      ///< memory write (latency supplied by the memory model)

    NumClasses
};

/** Number of modeled instruction classes. */
inline constexpr int NUM_INSTR_CLASSES =
    static_cast<int>(InstrClass::NumClasses);

/** Pseudo-instructions produced by the rest of the system (§3.1). */
enum class PseudoInstr : std::uint8_t
{
    Spawn = 0,      ///< thread spawned on this core
    MessageReceive, ///< user-level message received
    SyncWait,       ///< time spent blocked in application synchronization

    NumPseudo
};

/** Stable lowercase name for config keys and stats ("int_alu", ...). */
std::string_view instrClassName(InstrClass c);

} // namespace graphite
