/**
 * @file
 * In-order core performance model (paper §3.1).
 *
 * "The core performance model is a purely modeled component of the system
 * that manages the simulated clock local to each tile. It follows a
 * producer-consumer design: it consumes instructions and other dynamic
 * information produced by the rest of the system."
 *
 * The provided model is the paper's: an in-order pipeline with an
 * out-of-order memory system — store buffer and load unit are modeled as
 * slot rings that introduce structural stalls when full, branch
 * mispredictions charge a configurable penalty, and every instruction
 * class has a configurable cost. The local clock only moves forward;
 * forwardClock() implements the lax-synchronization "clock is forwarded to
 * the time the event occurred" rule.
 */

#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"
#include "perf/branch_predictor.h"
#include "perf/instruction.h"

namespace graphite
{

class Config;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Per-class instruction costs in cycles, configurable. */
struct InstructionCosts
{
    std::array<cycle_t, NUM_INSTR_CLASSES> cost;

    /** Paper-era in-order defaults (1 GHz scalar pipe). */
    static InstructionCosts defaults();

    /** Read overrides from perf_model/core/cost/<class> config keys. */
    static InstructionCosts fromConfig(const Config& cfg);
};

/**
 * The in-order core model. Owned and driven by a single application
 * thread; the clock is readable concurrently (LaxP2P partners, the skew
 * tracker) so it is atomic.
 */
class CoreModel
{
  public:
    CoreModel(tile_id_t tile, const Config& cfg);

    /** @name Instruction interface (producer side) @{ */

    /** Retire @p count instructions of class @p c. */
    void executeInstructions(InstrClass c, std::uint64_t count = 1);

    /** Retire a branch whose actual direction was @p taken. */
    void executeBranch(addr_t site, bool taken);

    /**
     * Retire a load whose memory latency was @p latency cycles (from the
     * memory model). An in-order core blocks on loads, but up to
     * load_queue_size loads may be outstanding before a structural stall.
     */
    void executeLoad(cycle_t latency);

    /**
     * Retire a store. Stores complete in the background through the store
     * buffer; the core stalls only when the buffer is full.
     */
    void executeStore(cycle_t latency);

    /** Consume a pseudo-instruction (spawn, message receive, ...). */
    void executePseudo(PseudoInstr p, cycle_t cost = 1);

    /** @} */

    /** @name Clock @{ */

    /** Current local clock (cycles). Thread-safe read. */
    cycle_t cycle() const { return clock_.load(std::memory_order_relaxed); }

    /**
     * Stable pointer to the local clock for concurrent observers (the
     * accuracy observatory reads it at delivery points). Valid for the
     * core's lifetime.
     */
    const std::atomic<cycle_t>* clockPtr() const { return &clock_; }

    /**
     * Forward the local clock to @p t on a true synchronization event;
     * no-op when @p t is in the past (lax rule, §3.6.1).
     */
    void forwardClock(cycle_t t);

    /** Unconditionally charge @p cycles of busy time. */
    void addLatency(cycle_t cycles);

    /** @} */

    /** @name Statistics @{ */
    stat_t instructionsRetired() const { return instructions_; }
    stat_t instructionsOfClass(InstrClass c) const;
    stat_t loadStalls() const { return loadStalls_; }
    stat_t storeStalls() const { return storeStalls_; }
    stat_t syncWaitCycles() const { return syncWaitCycles_; }
    const BranchPredictor& branchPredictor() const { return *bp_; }
    /** @} */

    tile_id_t tileId() const { return tile_; }

    /** @name Checkpoint serialization (owner thread quiescent) @{ */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    void advance(cycle_t cycles);

    tile_id_t tile_;
    std::atomic<cycle_t> clock_{0};
    InstructionCosts costs_;
    std::unique_ptr<BranchPredictor> bp_;
    cycle_t mispredictPenalty_;

    /** Completion times of in-flight loads/stores (slot rings). */
    std::vector<cycle_t> loadSlots_;
    std::vector<cycle_t> storeSlots_;
    size_t nextLoadSlot_ = 0;
    size_t nextStoreSlot_ = 0;

    stat_t instructions_ = 0;
    std::array<stat_t, NUM_INSTR_CLASSES> perClass_{};
    stat_t loadStalls_ = 0;
    stat_t storeStalls_ = 0;
    stat_t syncWaitCycles_ = 0;
};

} // namespace graphite
