#include "perf/branch_predictor.h"

#include <algorithm>

#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"

namespace graphite
{

bool
NullBranchPredictor::predictAndTrain(addr_t, bool)
{
    record(true);
    return true;
}

bool
AlwaysTakenBranchPredictor::predictAndTrain(addr_t, bool taken)
{
    record(taken);
    return taken;
}

OneBitBranchPredictor::OneBitBranchPredictor(size_t table_size)
    : table_(table_size ? table_size : 1, 1)
{
}

bool
OneBitBranchPredictor::predictAndTrain(addr_t site, bool taken)
{
    std::uint8_t& entry = table_[site % table_.size()];
    bool correct = (entry != 0) == taken;
    entry = taken ? 1 : 0;
    record(correct);
    return correct;
}

TwoBitBranchPredictor::TwoBitBranchPredictor(size_t table_size)
    : table_(table_size ? table_size : 1, 2)
{
}

bool
TwoBitBranchPredictor::predictAndTrain(addr_t site, bool taken)
{
    std::uint8_t& entry = table_[site % table_.size()];
    bool correct = (entry >= 2) == taken;
    if (taken) {
        if (entry < 3)
            ++entry;
    } else {
        if (entry > 0)
            --entry;
    }
    record(correct);
    return correct;
}

void
BranchPredictor::saveState(snapshot::SnapshotWriter& w) const
{
    w.u64(predictions_);
    w.u64(mispredictions_);
    saveTable(w);
}

void
BranchPredictor::loadState(snapshot::SnapshotReader& r)
{
    predictions_ = r.u64();
    mispredictions_ = r.u64();
    loadTable(r);
}

void
BranchPredictor::saveTable(snapshot::SnapshotWriter& w) const
{
    w.bytes("", 0); // stateless predictor: empty table blob
}

void
BranchPredictor::loadTable(snapshot::SnapshotReader& r)
{
    (void)r.bytes();
}

void
BranchPredictor::saveByteTable(snapshot::SnapshotWriter& w,
                               const std::vector<std::uint8_t>& table)
{
    w.bytes(table.data(), table.size());
}

/**
 * The table blob is length-prefixed, so a checkpoint forked into a
 * sweep with a different predictor size (or type) restores what fits
 * rather than misaligning the stream.
 */
void
BranchPredictor::loadByteTable(snapshot::SnapshotReader& r,
                               std::vector<std::uint8_t>& table)
{
    std::vector<std::uint8_t> saved = r.bytes();
    if (saved.size() == table.size()) {
        table = std::move(saved);
        return;
    }
    std::copy_n(saved.begin(), std::min(saved.size(), table.size()),
                table.begin());
}

void
OneBitBranchPredictor::saveTable(snapshot::SnapshotWriter& w) const
{
    saveByteTable(w, table_);
}

void
OneBitBranchPredictor::loadTable(snapshot::SnapshotReader& r)
{
    loadByteTable(r, table_);
}

void
TwoBitBranchPredictor::saveTable(snapshot::SnapshotWriter& w) const
{
    saveByteTable(w, table_);
}

void
TwoBitBranchPredictor::loadTable(snapshot::SnapshotReader& r)
{
    loadByteTable(r, table_);
}

std::unique_ptr<BranchPredictor>
BranchPredictor::create(const std::string& type, size_t table_size)
{
    if (type == "none")
        return std::make_unique<NullBranchPredictor>();
    if (type == "always_taken")
        return std::make_unique<AlwaysTakenBranchPredictor>();
    if (type == "one_bit")
        return std::make_unique<OneBitBranchPredictor>(table_size);
    if (type == "two_bit")
        return std::make_unique<TwoBitBranchPredictor>(table_size);
    fatal("unknown branch predictor type '{}'", type);
}

} // namespace graphite
