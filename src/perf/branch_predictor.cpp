#include "perf/branch_predictor.h"

#include "common/log.h"

namespace graphite
{

bool
NullBranchPredictor::predictAndTrain(addr_t, bool)
{
    record(true);
    return true;
}

bool
AlwaysTakenBranchPredictor::predictAndTrain(addr_t, bool taken)
{
    record(taken);
    return taken;
}

OneBitBranchPredictor::OneBitBranchPredictor(size_t table_size)
    : table_(table_size ? table_size : 1, 1)
{
}

bool
OneBitBranchPredictor::predictAndTrain(addr_t site, bool taken)
{
    std::uint8_t& entry = table_[site % table_.size()];
    bool correct = (entry != 0) == taken;
    entry = taken ? 1 : 0;
    record(correct);
    return correct;
}

TwoBitBranchPredictor::TwoBitBranchPredictor(size_t table_size)
    : table_(table_size ? table_size : 1, 2)
{
}

bool
TwoBitBranchPredictor::predictAndTrain(addr_t site, bool taken)
{
    std::uint8_t& entry = table_[site % table_.size()];
    bool correct = (entry >= 2) == taken;
    if (taken) {
        if (entry < 3)
            ++entry;
    } else {
        if (entry > 0)
            --entry;
    }
    record(correct);
    return correct;
}

std::unique_ptr<BranchPredictor>
BranchPredictor::create(const std::string& type, size_t table_size)
{
    if (type == "none")
        return std::make_unique<NullBranchPredictor>();
    if (type == "always_taken")
        return std::make_unique<AlwaysTakenBranchPredictor>();
    if (type == "one_bit")
        return std::make_unique<OneBitBranchPredictor>(table_size);
    if (type == "two_bit")
        return std::make_unique<TwoBitBranchPredictor>(table_size);
    fatal("unknown branch predictor type '{}'", type);
}

} // namespace graphite
