/**
 * @file
 * Configurable branch predictor models.
 *
 * The in-order core model charges a fixed mispredict penalty whenever the
 * predictor disagrees with the actual branch outcome reported by the
 * front end (the "paths of branches" dynamic information of paper §3.1).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Abstract branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict then train on the actual outcome.
     * @param site  static branch site identifier (stands in for the PC)
     * @param taken actual direction
     * @return true when the prediction was correct
     */
    virtual bool predictAndTrain(addr_t site, bool taken) = 0;

    /** @name Statistics @{ */
    stat_t predictions() const { return predictions_; }
    stat_t mispredictions() const { return mispredictions_; }
    /** @} */

    /**
     * Factory for config value "none" (always correct — disables the
     * penalty), "always_taken", "one_bit", or "two_bit".
     */
    static std::unique_ptr<BranchPredictor>
    create(const std::string& type, size_t table_size);

    /**
     * @name Checkpoint serialization
     * Base covers the counters; table predictors add their tables via
     * the saveTable/loadTable hooks.
     * @{
     */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  protected:
    virtual void saveTable(snapshot::SnapshotWriter& w) const;
    virtual void loadTable(snapshot::SnapshotReader& r);

    static void saveByteTable(snapshot::SnapshotWriter& w,
                              const std::vector<std::uint8_t>& table);
    static void loadByteTable(snapshot::SnapshotReader& r,
                              std::vector<std::uint8_t>& table);

    void
    record(bool correct)
    {
        ++predictions_;
        if (!correct)
            ++mispredictions_;
    }

  private:
    stat_t predictions_ = 0;
    stat_t mispredictions_ = 0;
};

/** Perfect predictor: modeling disabled. */
class NullBranchPredictor : public BranchPredictor
{
  public:
    bool predictAndTrain(addr_t site, bool taken) override;
};

/** Static predict-taken. */
class AlwaysTakenBranchPredictor : public BranchPredictor
{
  public:
    bool predictAndTrain(addr_t site, bool taken) override;
};

/** Last-direction table predictor. */
class OneBitBranchPredictor : public BranchPredictor
{
  public:
    explicit OneBitBranchPredictor(size_t table_size);
    bool predictAndTrain(addr_t site, bool taken) override;

  protected:
    void saveTable(snapshot::SnapshotWriter& w) const override;
    void loadTable(snapshot::SnapshotReader& r) override;

  private:
    std::vector<std::uint8_t> table_;
};

/** Saturating two-bit counter table predictor. */
class TwoBitBranchPredictor : public BranchPredictor
{
  public:
    explicit TwoBitBranchPredictor(size_t table_size);
    bool predictAndTrain(addr_t site, bool taken) override;

  protected:
    void saveTable(snapshot::SnapshotWriter& w) const override;
    void loadTable(snapshot::SnapshotReader& r) override;

  private:
    std::vector<std::uint8_t> table_; ///< states 0..3; >=2 predicts taken
};

} // namespace graphite
