#include "common/lockdep.h"
#include "sync/sync_model.h"

#include <algorithm>
#include <thread>

#include "common/config.h"
#include "common/log.h"
#include "host/scheduler.h"
#include "obs/accuracy/accuracy.h"
#include "obs/profiler.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/trace_event.h"
#include "perf/core_model.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"

namespace graphite
{

std::unique_ptr<SyncModel>
SyncModel::create(const Config& cfg, tile_id_t total_tiles)
{
    std::string type = cfg.getString("sync/model", "lax");
    cycle_t quantum = cfg.getInt("sync/quantum", 1000);
    cycle_t slack = cfg.getInt("sync/slack", 100000);
    std::uint64_t seed = cfg.getInt("rng/seed", 42);
    if (type == "lax")
        return std::make_unique<LaxSync>();
    if (type == "lax_barrier")
        return std::make_unique<LaxBarrierSync>(quantum, total_tiles);
    if (type == "lax_p2p")
        return std::make_unique<LaxP2PSync>(
            total_tiles, slack, cfg.getInt("sync/p2p_interval", 1000),
            seed);
    fatal("unknown sync model '{}'", type);
}

// ------------------------------------------------------------ LaxBarrier

LaxBarrierSync::LaxBarrierSync(cycle_t quantum, tile_id_t total_tiles)
    : quantum_(quantum), nextTarget_(total_tiles, quantum)
{
    if (quantum == 0)
        fatal("lax_barrier: quantum must be positive");
}

void
LaxBarrierSync::threadStart(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    ++active_;
    cycle_t c = core.cycle();
    nextTarget_[core.tileId()] = (c / quantum_ + 1) * quantum_;
}

void
LaxBarrierSync::releaseWaitersLocked()
{
    // Caller holds mutex_ and completed the epoch: re-queue every
    // blocked waiter with the scheduler at this (deterministic) point
    // rather than when their host threads win the condition variable.
    if (sched_ != nullptr) {
        for (tile_id_t t : waitingTiles_)
            sched_->notifyUnblocked(
                t, host::HostScheduler::BlockKind::Sync);
    }
    waitingTiles_.clear();
}

void
LaxBarrierSync::leave()
{
    // Caller holds mutex_. A departing thread may complete the epoch for
    // the remaining waiters.
    --active_;
    GRAPHITE_ASSERT(active_ >= 0);
    if (active_ > 0 && waiting_ == active_) {
        waiting_ = 0;
        ++epoch_;
        releaseWaitersLocked();
        cv_.notify_all();
    }
}

void
LaxBarrierSync::threadExit(CoreModel&)
{
    lockdep::Guard lock(mutex_);
    leave();
}

void
LaxBarrierSync::threadBlocked(CoreModel&)
{
    lockdep::Guard lock(mutex_);
    leave();
}

void
LaxBarrierSync::threadUnblocked(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    ++active_;
    // The clock may have been forwarded arbitrarily far while blocked;
    // re-align the next barrier target to the first boundary ahead.
    cycle_t c = core.cycle();
    nextTarget_[core.tileId()] = (c / quantum_ + 1) * quantum_;
}

void
LaxBarrierSync::arrive(tile_id_t tile, cycle_t now)
{
    GRAPHITE_PROFILE_SCOPE("sync.barrier_wait");
    auto t0 = std::chrono::steady_clock::now();
    lockdep::UniqueLock lock(mutex_);
    ++waiting_;
    bool blocked = false;
    if (waiting_ == active_) {
        waiting_ = 0;
        ++epoch_;
        barriers_.fetch_add(1, std::memory_order_relaxed);
        releaseWaitersLocked();
        cv_.notify_all();
    } else {
        std::uint64_t my_epoch = epoch_;
        // Give up the execution slot for the duration of the epoch
        // wait — the barrier must never hold a slot hostage, or the
        // laggards it waits for could not run.
        if (sched_ != nullptr) {
            waitingTiles_.push_back(tile);
            sched_->beginBlock(tile,
                               host::HostScheduler::BlockKind::Sync);
            blocked = true;
        }
        cv_.wait(lock, [&] { return epoch_ != my_epoch; });
    }
    std::uint64_t released_epoch = epoch_;
    lock.unlock();
    // Re-acquire a slot outside mutex_: a grant can take arbitrarily
    // long and other threads need the barrier lock to release us.
    if (blocked)
        sched_->endBlock(tile);
    auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    waitMicros_.fetch_add(dt, std::memory_order_relaxed);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::SyncBarrier, tile, now, released_epoch,
        static_cast<std::uint64_t>(dt));
    obs::TraceSink::instant(static_cast<std::uint32_t>(tile),
                            "sync.barrier", now, "wait_us", dt);
}

void
LaxBarrierSync::periodicSync(CoreModel& core)
{
    tile_id_t tile = core.tileId();
    while (true) {
        {
            lockdep::Guard lock(mutex_);
            if (core.cycle() < nextTarget_[tile])
                return;
            nextTarget_[tile] += quantum_;
        }
        arrive(tile, core.cycle());
    }
}

// ---------------------------------------------------------------- LaxP2P

LaxP2PSync::LaxP2PSync(tile_id_t total_tiles, cycle_t slack,
                       cycle_t interval, std::uint64_t seed)
    : slack_(slack),
      interval_(interval),
      start_(std::chrono::steady_clock::now()),
      cores_(total_tiles, nullptr),
      rng_(seed),
      nextCheck_(total_tiles, interval)
{
    if (interval == 0)
        fatal("lax_p2p: interval must be positive");
}

void
LaxP2PSync::threadStart(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    cores_[core.tileId()] = &core;
    nextCheck_[core.tileId()] = core.cycle() + interval_;
}

void
LaxP2PSync::threadExit(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    cores_[core.tileId()] = nullptr;
}

void
LaxP2PSync::threadBlocked(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    cores_[core.tileId()] = nullptr;
}

void
LaxP2PSync::threadUnblocked(CoreModel& core)
{
    lockdep::Guard lock(mutex_);
    cores_[core.tileId()] = &core;
    nextCheck_[core.tileId()] = core.cycle() + interval_;
}

void
LaxP2PSync::periodicSync(CoreModel& core)
{
    tile_id_t tile = core.tileId();
    cycle_t my_clock = core.cycle();
    cycle_t partner_clock = 0;
    tile_id_t partner = INVALID_TILE_ID;
    bool found = false;
    {
        lockdep::Guard lock(mutex_);
        if (my_clock < nextCheck_[tile])
            return;
        nextCheck_[tile] = my_clock + interval_;

        // Choose a random *other* active tile.
        std::vector<tile_id_t> candidates;
        candidates.reserve(cores_.size());
        for (tile_id_t t = 0;
             t < static_cast<tile_id_t>(cores_.size()); ++t) {
            if (t != tile && cores_[t] != nullptr)
                candidates.push_back(t);
        }
        if (!candidates.empty()) {
            partner = candidates[rng_.nextBounded(candidates.size())];
            partner_clock = cores_[partner]->cycle();
            found = true;
        }
    }
    if (!found)
        return;

    // Each partner check is an interaction point: feed the observed
    // clock pair to the accuracy observatory's skew matrix (pure
    // observation, no effect on the park/sleep decision below).
    if (obs::accuracy::AccuracyObservatory::armed())
        obs::accuracy::AccuracyObservatory::instance().onPairObserved(
            tile, partner, my_clock, partner_clock);

    if (my_clock > partner_clock && my_clock - partner_clock > slack_) {
        if (sched_ != nullptr) {
            // Under the host scheduler, parking on the skew gate
            // replaces the wall-clock sleep: the slot goes to a
            // laggard and we resume once the minimum schedulable
            // clock is within the slack again. Simulated time is
            // unaffected either way; only host scheduling changes.
            std::uint64_t ns =
                sched_->skewPark(tile, my_clock - slack_);
            if (ns > 0) {
                auto micros =
                    static_cast<std::int64_t>(std::max<std::uint64_t>(
                        ns / 1000, 1));
                sleeps_.fetch_add(1, std::memory_order_relaxed);
                sleepMicros_.fetch_add(micros,
                                       std::memory_order_relaxed);
                obs::telemetry::FlightRecorder::record(
                    obs::telemetry::FrEvent::SyncSleep, tile, my_clock,
                    static_cast<std::uint64_t>(micros),
                    my_clock - partner_clock);
                obs::TraceSink::instant(
                    static_cast<std::uint32_t>(tile), "sync.p2p_park",
                    my_clock, "park_us", micros);
            }
            return;
        }
        // We are ahead: sleep s = c / r, where r is the observed
        // simulation rate in cycles per wall-clock second (§3.6.3).
        cycle_t c = my_clock - partner_clock;
        double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        if (elapsed <= 0.0)
            return;
        double r = static_cast<double>(my_clock) / elapsed;
        if (r <= 0.0)
            return;
        double sleep_s = static_cast<double>(c) / r;
        // Bound pathological sleeps (startup transients).
        sleep_s = std::min(sleep_s, 0.05);
        auto micros = static_cast<std::int64_t>(sleep_s * 1e6);
        if (micros <= 0)
            return;
        sleeps_.fetch_add(1, std::memory_order_relaxed);
        sleepMicros_.fetch_add(micros, std::memory_order_relaxed);
        obs::telemetry::FlightRecorder::record(
            obs::telemetry::FrEvent::SyncSleep, tile, my_clock,
            static_cast<std::uint64_t>(micros),
            my_clock - partner_clock);
        obs::TraceSink::instant(static_cast<std::uint32_t>(tile),
                                "sync.p2p_sleep", my_clock, "sleep_us",
                                micros);
        GRAPHITE_PROFILE_SCOPE("sync.p2p_sleep");
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
}

// ----------------------------------------------------------- serialization

void
LaxBarrierSync::saveState(snapshot::SnapshotWriter& w) const
{
    // Quiescence: no thread is parked in arrive(), so active_,
    // waiting_ and waitingTiles_ are all at rest; only the epoch, the
    // per-tile quantum targets and the barrier count carry forward.
    w.u64(barriers_.load(std::memory_order_relaxed));
    w.u64(epoch_);
    w.u64(static_cast<std::uint64_t>(nextTarget_.size()));
    for (cycle_t c : nextTarget_)
        w.u64(c);
}

void
LaxBarrierSync::loadState(snapshot::SnapshotReader& r)
{
    barriers_.store(r.u64(), std::memory_order_relaxed);
    epoch_ = r.u64();
    std::uint64_t n = r.u64();
    if (n != nextTarget_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: barrier tile count mismatch (snapshot "
                   "{}, configured {})",
                   n, nextTarget_.size()));
    for (cycle_t& c : nextTarget_)
        c = r.u64();
}

void
LaxP2PSync::saveState(snapshot::SnapshotWriter& w) const
{
    lockdep::Guard lock(mutex_);
    w.u64(rng_.state());
    w.u64(static_cast<std::uint64_t>(nextCheck_.size()));
    for (cycle_t c : nextCheck_)
        w.u64(c);
}

void
LaxP2PSync::loadState(snapshot::SnapshotReader& r)
{
    lockdep::Guard lock(mutex_);
    rng_.setState(r.u64());
    std::uint64_t n = r.u64();
    if (n != nextCheck_.size())
        throw snapshot::SnapshotError(
            strfmt("snapshot: p2p tile count mismatch (snapshot {}, "
                   "configured {})",
                   n, nextCheck_.size()));
    for (cycle_t& c : nextCheck_)
        c = r.u64();
}

} // namespace graphite
