/**
 * @file
 * Clock-skew measurement (paper §4.3, Figure 7).
 *
 * "Simulated clocks for each tile are collected at many points during
 * program execution. This data is used to generate an approximate average
 * 'global cycle count' for the simulation at any given moment. The
 * difference between individual clocks and the 'global clock' is then
 * computed. The full simulation time is split into sub-intervals, and
 * [the figure] shows the maximum and minimum difference for each
 * interval."
 *
 * Tile clocks are atomics, so the tracker takes *simultaneous* snapshots
 * of every attached core's clock (throttled; triggered from the periodic
 * sync checks of whichever thread gets there first). Each snapshot gives
 * one skew observation: per-tile deviation from the snapshot mean.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"

namespace graphite
{

class CoreModel;

/** One clock source: a core plus its runnability flag. */
struct SkewSource
{
    const CoreModel* core = nullptr;
    /** Polled before sampling; blocked tiles are excluded so phase
     *  imbalance at application barriers does not read as model skew. */
    const std::atomic<bool>* running = nullptr;
};

/** Collects simultaneous clock snapshots during a run. */
class SkewTracker
{
  public:
    /** @param min_period_us minimum wall time between snapshots. */
    explicit SkewTracker(std::uint64_t min_period_us = 2000);

    /** Attach the cores whose clocks are snapshot (before the run). */
    void attachCores(std::vector<SkewSource> cores);

    /**
     * Take a snapshot if at least the configured period elapsed since
     * the previous one. Thread-safe; called from periodic sync checks.
     * Tiles whose clock is still zero (never ran) are excluded.
     */
    void maybeSnapshot();

    /** One per-interval skew summary. */
    struct Interval
    {
        double wallSeconds = 0; ///< interval midpoint
        double maxSkew = 0;     ///< max (clock − global clock), cycles
        double minSkew = 0;     ///< min (clock − global clock), cycles
    };

    /**
     * Bucket snapshots into @p num_intervals wall-clock intervals and
     * report the extreme deviations from each snapshot's mean clock.
     */
    std::vector<Interval> analyze(int num_intervals) const;

    /** Number of snapshots collected. */
    size_t sampleCount() const;

  private:
    struct Snapshot
    {
        double wallSeconds;
        double maxSkew;
        double minSkew;
    };

    std::chrono::steady_clock::time_point start_;
    std::uint64_t minPeriodUs_;
    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::skew_tracker};
    std::vector<SkewSource> cores_;
    std::chrono::steady_clock::time_point lastSnap_;
    std::vector<Snapshot> snaps_;
};

} // namespace graphite
