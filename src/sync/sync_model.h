/**
 * @file
 * Synchronization models (paper §3.6).
 *
 * "Graphite offers a number of synchronization models with different
 * accuracy and performance trade-offs":
 *
 *  - Lax:        clocks synchronize only on application events; threads
 *                otherwise run freely (best performance, §3.6.1).
 *  - LaxBarrier: all *active* threads wait on a barrier every quantum
 *                cycles; very frequent barriers closely approximate
 *                cycle-accurate simulation (§3.6.2).
 *  - LaxP2P:     each tile periodically picks a random partner; a tile
 *                ahead of its partner by more than the slack sleeps for
 *                s = c / r wall-clock seconds, where c is the clock
 *                difference and r the observed simulation rate (§3.6.3).
 *                Completely distributed — no global structures.
 *
 * Threads that block in application synchronization (futex) or have
 * exited must be deregistered from the model, or a barrier would wait
 * forever on a thread that cannot advance.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/rng.h"
#include "common/stats.h"

namespace graphite
{

class Config;
class CoreModel;

namespace host
{
class HostScheduler;
}

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Abstract synchronization model. All methods are thread-safe. */
class SyncModel
{
  public:
    virtual ~SyncModel() = default;

    /**
     * Attach the host execution scheduler (null when off). A model
     * whose skew mechanism blocks integrates with it: barrier waits
     * release the execution slot, and LaxP2P parks on the scheduler's
     * skew gate instead of wall-clock sleeping.
     */
    void attachScheduler(host::HostScheduler* sched) { sched_ = sched; }

    /** A thread began running on @p core's tile. */
    virtual void threadStart(CoreModel& core) = 0;

    /** The thread on @p core's tile finished. */
    virtual void threadExit(CoreModel& core) = 0;

    /** The thread is about to block in application synchronization. */
    virtual void threadBlocked(CoreModel& core) = 0;

    /** The thread resumed from application synchronization. */
    virtual void threadUnblocked(CoreModel& core) = 0;

    /**
     * Called by the running thread every sync/check_interval modeled
     * instructions; implements the model's skew-limiting mechanism.
     */
    virtual void periodicSync(CoreModel& core) = 0;

    /** Model name ("lax", "lax_barrier", "lax_p2p"). */
    virtual std::string name() const = 0;

    /** @name Statistics @{ */
    virtual stat_t syncEvents() const { return 0; }
    virtual stat_t syncWaitMicroseconds() const { return 0; }
    /** @} */

    /** Factory from config key sync/model. */
    static std::unique_ptr<SyncModel> create(const Config& cfg,
                                             tile_id_t total_tiles);

    /**
     * @name Checkpoint serialization (all threads quiescent)
     * Architectural skew state only — wall-clock wait stats are host
     * artifacts and restart at zero. Stateless models save nothing.
     * @{
     */
    virtual void saveState(snapshot::SnapshotWriter&) const {}
    virtual void loadState(snapshot::SnapshotReader&) {}
    /** @} */

  protected:
    host::HostScheduler* sched_ = nullptr;
};

/** §3.6.1 — application events only; periodicSync is a no-op. */
class LaxSync : public SyncModel
{
  public:
    void threadStart(CoreModel&) override {}
    void threadExit(CoreModel&) override {}
    void threadBlocked(CoreModel&) override {}
    void threadUnblocked(CoreModel&) override {}
    void periodicSync(CoreModel&) override {}
    std::string name() const override { return "lax"; }
};

/** §3.6.2 — quanta-based barrier over all active threads. */
class LaxBarrierSync : public SyncModel
{
  public:
    LaxBarrierSync(cycle_t quantum, tile_id_t total_tiles);

    void threadStart(CoreModel& core) override;
    void threadExit(CoreModel& core) override;
    void threadBlocked(CoreModel& core) override;
    void threadUnblocked(CoreModel& core) override;
    void periodicSync(CoreModel& core) override;
    std::string name() const override { return "lax_barrier"; }

    stat_t syncEvents() const override { return barriers_.load(); }
    stat_t
    syncWaitMicroseconds() const override
    {
        return waitMicros_.load();
    }

    void saveState(snapshot::SnapshotWriter& w) const override;
    void loadState(snapshot::SnapshotReader& r) override;

  private:
    void arrive(tile_id_t tile, cycle_t now);
    void leave();
    void releaseWaitersLocked();

    cycle_t quantum_;
    lockdep::OrderedMutex mutex_{lockdep::LockClass::sync_barrier};
    lockdep::CondVar cv_;
    int active_ = 0;
    int waiting_ = 0;
    std::uint64_t epoch_ = 0;
    /** Next barrier quantum boundary per tile. */
    std::vector<cycle_t> nextTarget_;
    /** Tiles blocked in arrive(), for deterministic unparking. */
    std::vector<tile_id_t> waitingTiles_;
    std::atomic<stat_t> barriers_{0};
    std::atomic<stat_t> waitMicros_{0};
};

/** §3.6.3 — random-partner point-to-point synchronization. */
class LaxP2PSync : public SyncModel
{
  public:
    /**
     * @param total_tiles  tile count (partner choice domain)
     * @param slack        max tolerated clock difference, cycles
     * @param interval     cycles between partner checks
     * @param seed         RNG seed for partner selection
     */
    LaxP2PSync(tile_id_t total_tiles, cycle_t slack, cycle_t interval,
               std::uint64_t seed);

    void threadStart(CoreModel& core) override;
    void threadExit(CoreModel& core) override;
    void threadBlocked(CoreModel& core) override;
    void threadUnblocked(CoreModel& core) override;
    void periodicSync(CoreModel& core) override;
    std::string name() const override { return "lax_p2p"; }

    stat_t syncEvents() const override { return sleeps_.load(); }
    stat_t
    syncWaitMicroseconds() const override
    {
        return sleepMicros_.load();
    }

    void saveState(snapshot::SnapshotWriter& w) const override;
    void loadState(snapshot::SnapshotReader& r) override;

  private:
    cycle_t slack_;
    cycle_t interval_;
    std::chrono::steady_clock::time_point start_;

    mutable lockdep::OrderedMutex mutex_{
        lockdep::LockClass::sync_p2p}; ///< guards cores_ and rng_
    std::vector<CoreModel*> cores_; ///< active cores, nullptr when off
    Rng rng_;
    /** Next local check threshold per tile. */
    std::vector<cycle_t> nextCheck_;
    std::atomic<stat_t> sleeps_{0};
    std::atomic<stat_t> sleepMicros_{0};
};

} // namespace graphite
