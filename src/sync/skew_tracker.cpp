#include "common/lockdep.h"
#include "sync/skew_tracker.h"

#include <algorithm>

#include "obs/accuracy/accuracy.h"
#include "obs/trace_event.h"
#include "perf/core_model.h"

namespace graphite
{

SkewTracker::SkewTracker(std::uint64_t min_period_us)
    : start_(std::chrono::steady_clock::now()),
      minPeriodUs_(min_period_us),
      lastSnap_(start_)
{
}

void
SkewTracker::attachCores(std::vector<SkewSource> cores)
{
    lockdep::Guard lock(mutex_);
    cores_ = std::move(cores);
}

void
SkewTracker::maybeSnapshot()
{
    auto now = std::chrono::steady_clock::now();
    lockdep::Guard lock(mutex_);
    if (cores_.empty())
        return;
    auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - lastSnap_)
            .count();
    if (elapsed_us >= 0 &&
        static_cast<std::uint64_t>(elapsed_us) < minPeriodUs_)
        return;
    lastSnap_ = now;

    double sum = 0;
    int n = 0;
    cycle_t fast_clock = 0;
    cycle_t slow_clock = 0;
    tile_id_t fast_tile = INVALID_TILE_ID;
    tile_id_t slow_tile = INVALID_TILE_ID;
    std::vector<double> clocks;
    clocks.reserve(cores_.size());
    for (const SkewSource& src : cores_) {
        if (src.running != nullptr && !src.running->load())
            continue; // blocked or idle tile
        cycle_t c = src.core->cycle();
        if (c == 0)
            continue; // tile never ran
        if (fast_tile == INVALID_TILE_ID || c > fast_clock) {
            fast_clock = c;
            fast_tile = src.core->tileId();
        }
        if (slow_tile == INVALID_TILE_ID || c < slow_clock) {
            slow_clock = c;
            slow_tile = src.core->tileId();
        }
        clocks.push_back(static_cast<double>(c));
        sum += static_cast<double>(c);
        ++n;
    }
    if (n < 2)
        return;

    // The envelope extremes define the worst tile pair this snapshot;
    // feed it to the accuracy observatory's skew matrix.
    if (obs::accuracy::AccuracyObservatory::armed() &&
        fast_tile != slow_tile)
        obs::accuracy::AccuracyObservatory::instance().onPairObserved(
            fast_tile, slow_tile, fast_clock, slow_clock);
    double mean = sum / n;
    Snapshot s;
    s.wallSeconds =
        std::chrono::duration<double>(now - start_).count();
    s.maxSkew = -1e300;
    s.minSkew = 1e300;
    for (double c : clocks) {
        s.maxSkew = std::max(s.maxSkew, c - mean);
        s.minSkew = std::min(s.minSkew, c - mean);
    }
    snaps_.push_back(s);

    // Counter tracks on lane 0 plot the skew envelope over target time.
    auto ts = static_cast<cycle_t>(mean);
    obs::TraceSink::counter(0, "skew.max_cycles", ts,
                            static_cast<std::int64_t>(s.maxSkew));
    obs::TraceSink::counter(0, "skew.min_cycles", ts,
                            static_cast<std::int64_t>(s.minSkew));
}

size_t
SkewTracker::sampleCount() const
{
    lockdep::Guard lock(mutex_);
    return snaps_.size();
}

std::vector<SkewTracker::Interval>
SkewTracker::analyze(int num_intervals) const
{
    lockdep::Guard lock(mutex_);
    std::vector<Interval> out;
    if (snaps_.empty() || num_intervals <= 0)
        return out;

    double t_end = 0;
    for (const Snapshot& s : snaps_)
        t_end = std::max(t_end, s.wallSeconds);
    if (t_end <= 0)
        t_end = 1e-9;
    double width = t_end / num_intervals;

    for (int b = 0; b < num_intervals; ++b) {
        double lo = b * width;
        double hi = (b + 1) * width;
        Interval iv;
        iv.wallSeconds = (lo + hi) / 2;
        iv.maxSkew = -1e300;
        iv.minSkew = 1e300;
        bool any = false;
        for (const Snapshot& s : snaps_) {
            bool inside = s.wallSeconds >= lo &&
                          (s.wallSeconds < hi ||
                           (b == num_intervals - 1 &&
                            s.wallSeconds <= hi + 1e-12));
            if (!inside)
                continue;
            iv.maxSkew = std::max(iv.maxSkew, s.maxSkew);
            iv.minSkew = std::min(iv.minSkew, s.minSkew);
            any = true;
        }
        if (any)
            out.push_back(iv);
    }
    return out;
}

} // namespace graphite
