#include "check/fuzz_runner.h"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "check/invariants.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/strfmt.h"
#include "core/api.h"
#include "core/simulator.h"
#include "mem/address_space.h"
#include "race/detector.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"

namespace graphite
{
namespace check
{

namespace
{

constexpr std::uint64_t FNV_OFFSET = 1469598103934665603ull;
constexpr std::uint64_t FNV_PRIME = 1099511628211ull;

/** FNV-1a over a stream of 64-bit values. */
struct Fold
{
    std::uint64_t h = FNV_OFFSET;

    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= FNV_PRIME;
        }
    }
};

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9E3779B97F4A7C15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

struct HostShared
{
    const FuzzProgram* prog = nullptr;
    addr_t privBase = 0;
    addr_t lockBase = 0;
    addr_t ctrBase = 0;
    addr_t casBase = 0;
    addr_t mutexBase = 0;
    addr_t barrier = 0;
    std::vector<tile_id_t> tiles;    ///< tile of thread idx
    std::vector<int> enabledIdx;     ///< enabled thread idxs, ascending
    std::vector<std::uint64_t> folds; ///< carried FNV state per thread
    std::uint64_t finalFingerprint = 0;

    /** @name Segmented execution (checkpoint/resume differential)
     * fuzzMain runs rounds [firstRound, min(lastRound, rounds.size())).
     * layoutReady marks that target memory is already allocated and
     * initialized — set after the first segment, or by unpacking a
     * checkpoint's application blob (the restored target memory image
     * makes re-initialization both unnecessary and wrong). @{ */
    std::uint64_t firstRound = 0;
    std::uint64_t lastRound = ~0ull;
    bool layoutReady = false;
    /** @} */
};

/** Persist the workload bookkeeping across a checkpoint boundary. */
std::vector<std::uint8_t>
packAppBlob(const HostShared& sh)
{
    snapshot::SnapshotWriter w;
    w.u64(sh.privBase);
    w.u64(sh.lockBase);
    w.u64(sh.ctrBase);
    w.u64(sh.casBase);
    w.u64(sh.mutexBase);
    w.u64(sh.barrier);
    w.u64(sh.folds.size());
    for (std::uint64_t f : sh.folds)
        w.u64(f);
    return w.finish();
}

void
unpackAppBlob(const std::vector<std::uint8_t>& blob, HostShared& sh)
{
    snapshot::SnapshotReader r(blob);
    sh.privBase = r.u64();
    sh.lockBase = r.u64();
    sh.ctrBase = r.u64();
    sh.casBase = r.u64();
    sh.mutexBase = r.u64();
    sh.barrier = r.u64();
    std::uint64_t n_folds = r.u64();
    if (n_folds > 1024)
        throw snapshot::SnapshotError(
            strfmt("snapshot: implausible fold count {}", n_folds));
    sh.folds.resize(n_folds);
    for (std::uint64_t& f : sh.folds)
        f = r.u64();
    r.expectEnd();
    sh.layoutReady = true;
}

struct ThreadArg
{
    HostShared* sh = nullptr;
    int idx = 0;
};

struct ChildArg
{
    std::uint64_t seed = 0;
    std::uint64_t round = 0;
    std::uint64_t fold = 0;
};

/** Transient respawn child: private scratch workload. */
void
childMain(void* p)
{
    ChildArg& c = *static_cast<ChildArg*>(p);
    Rng rng(mix(c.seed, 0x5EED0000 + c.round));
    Fold f;
    std::uint32_t sz = 64 + static_cast<std::uint32_t>(rng.nextBounded(193));
    addr_t a = api::malloc(sz);
    for (std::uint32_t off = 0; off + 4 <= sz; off += 4)
        api::write<std::uint32_t>(a + off,
                                  static_cast<std::uint32_t>(rng.next()));
    for (int k = 0; k < 8; ++k) {
        std::uint32_t w =
            static_cast<std::uint32_t>(rng.nextBounded(sz / 4));
        f.add(api::read<std::uint32_t>(a + w * 4));
    }
    api::free(a);
    c.fold = f.h;
}

void
doAction(HostShared& sh, int idx, int rank, int nact,
         const FuzzAction& act, Fold& fold)
{
    const FuzzProgram& p = *sh.prog;
    Rng rng(mix(act.valueSeed, 0xAC7 + idx));
    switch (act.kind) {
      case ActionKind::PrivateRw: {
        // Disjoint per-thread slices of one region: no data races, but
        // adjacent slices share lines (heavy false sharing).
        std::uint32_t w_per = p.regionWords;
        std::uint32_t lo = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(w_per) * rank / nact);
        std::uint32_t hi = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(w_per) * (rank + 1) / nact);
        if (hi <= lo)
            hi = lo + 1;
        addr_t base =
            sh.privBase + static_cast<addr_t>(act.region) * w_per * 4;
        for (std::uint32_t k = 0; k < act.ops; ++k) {
            std::uint32_t w =
                lo + static_cast<std::uint32_t>(rng.nextBounded(hi - lo));
            addr_t a = base + w * 4;
            std::uint32_t v = static_cast<std::uint32_t>(rng.next());
            api::write<std::uint32_t>(a, v);
            fold.add(api::read<std::uint32_t>(a));
        }
        break;
      }
      case ActionKind::SharedAtomic: {
        addr_t a = sh.ctrBase + act.counter * 8;
        // Warm the L1 with a plain read so atomics and plain copies of
        // the line coexist; the value is interleaving-dependent, so it
        // is NOT folded.
        (void)api::read<std::uint64_t>(a);
        for (std::uint32_t k = 0; k < act.ops; ++k)
            api::atomicAdd64(
                a, static_cast<std::int64_t>(rng.nextBounded(1000) + 1));
        break;
      }
      case ActionKind::CasAccumulate: {
        addr_t a = sh.casBase + act.counter * 4;
        for (std::uint32_t k = 0; k < act.ops; ++k) {
            std::uint32_t d =
                static_cast<std::uint32_t>(rng.nextBounded(255)) + 1;
            for (;;) {
                std::uint32_t old = api::atomicAdd32(a, 0);
                if (api::atomicCas32(a, old, old + d) == old)
                    break;
            }
        }
        break;
      }
      case ActionKind::MutexSection: {
        std::uint32_t r = act.region;
        addr_t m = sh.mutexBase + (r % p.mutexes) * api::MUTEX_BYTES;
        addr_t base =
            sh.lockBase + static_cast<addr_t>(r) * p.regionWords * 4;
        api::mutexLock(m);
        for (std::uint32_t k = 0; k < act.ops; ++k) {
            std::uint32_t w =
                static_cast<std::uint32_t>(rng.nextBounded(p.regionWords));
            addr_t a = base + w * 4;
            std::uint32_t d =
                static_cast<std::uint32_t>(rng.nextBounded(4096));
            api::write<std::uint32_t>(a,
                                      api::read<std::uint32_t>(a) + d);
        }
        api::mutexUnlock(m);
        break;
      }
      case ActionKind::Scratch: {
        std::uint32_t sz =
            16 + static_cast<std::uint32_t>(rng.nextBounded(241));
        addr_t a = api::malloc(sz);
        for (std::uint32_t off = 0; off + 4 <= sz; off += 4)
            api::write<std::uint32_t>(
                a + off, static_cast<std::uint32_t>(rng.next()));
        for (int k = 0; k < 4; ++k) {
            std::uint32_t w =
                static_cast<std::uint32_t>(rng.nextBounded(sz / 4));
            fold.add(api::read<std::uint32_t>(a + w * 4));
        }
        api::free(a);
        break;
      }
      case ActionKind::Compute: {
        api::exec(InstrClass::IntAlu, 1 + rng.nextBounded(40));
        for (std::uint32_t k = 0; k < act.ops; ++k)
            api::branch(0x1000 + (act.valueSeed & 0xfff),
                        rng.nextBounded(2) == 0);
        fold.add(rng.next());
        break;
      }
    }
}

void
runThreadBody(HostShared& sh, int idx)
{
    const FuzzProgram& p = *sh.prog;
    Fold fold;
    fold.h = sh.folds[idx]; // continue the FNV chain across segments
    int nact = static_cast<int>(sh.enabledIdx.size());
    int rank = 0;
    for (int i = 0; i < nact; ++i)
        if (sh.enabledIdx[i] == idx)
            rank = i;

    // Start barrier: guarantees the tile table is complete before any
    // ring round reads it.
    api::barrierWait(sh.barrier);

    const auto first = static_cast<std::size_t>(sh.firstRound);
    const std::size_t last = std::min<std::size_t>(
        p.rounds.size(), static_cast<std::size_t>(sh.lastRound));
    for (std::size_t r = first; r < last; ++r) {
        const FuzzRound& round = p.rounds[r];
        if (!round.enabled)
            continue;
        for (const FuzzAction& act : round.actions[idx])
            if (act.enabled)
                doAction(sh, idx, rank, nact, act, fold);

        if (round.msgRing && nact >= 2) {
            std::uint64_t token = mix(p.seed, (r << 8) ^ idx);
            tile_id_t peer = sh.tiles[sh.enabledIdx[(rank + 1) % nact]];
            api::msgSend(peer, &token, sizeof(token));
            api::Message msg = api::msgRecv();
            std::uint64_t got = 0;
            if (msg.data.size() == sizeof(got))
                std::memcpy(&got, msg.data.data(), sizeof(got));
            fold.add(got);
            fold.add(static_cast<std::uint64_t>(msg.sender));
        }

        if (round.respawn && idx == 0) {
            ChildArg c{p.seed, r, 0};
            tile_id_t t = api::threadSpawn(&childMain, &c);
            api::threadJoin(t);
            fold.add(c.fold);
        }

        if (round.barrierAfter)
            api::barrierWait(sh.barrier);
    }
    sh.folds[idx] = fold.h;
}

void
fuzzThreadMain(void* p)
{
    ThreadArg& arg = *static_cast<ThreadArg*>(p);
    runThreadBody(*arg.sh, arg.idx);
}

void
zeroTarget(addr_t base, std::uint64_t bytes)
{
    std::vector<std::uint8_t> zeros(64, 0);
    for (std::uint64_t off = 0; off < bytes; off += 64)
        api::writeMem(base + off, zeros.data(),
                      std::min<std::uint64_t>(64, bytes - off));
}

void
fuzzMain(void* p)
{
    HostShared& sh = *static_cast<HostShared*>(p);
    const FuzzProgram& prog = *sh.prog;
    std::uint32_t w_bytes = prog.regionWords * 4;
    std::uint64_t sync_bytes =
        prog.mutexes * api::MUTEX_BYTES + api::BARRIER_BYTES;

    sh.enabledIdx.clear();
    for (int t = 0; t < prog.threads; ++t)
        if (prog.threadEnabled[t])
            sh.enabledIdx.push_back(t);

    if (!sh.layoutReady) {
        sh.privBase = api::malloc(prog.privateRegions * w_bytes);
        sh.lockBase = api::malloc(prog.lockedRegions * w_bytes);
        sh.ctrBase = api::malloc(prog.counters * 8);
        sh.casBase = api::malloc(prog.casCounters * 4);
        zeroTarget(sh.privBase, prog.privateRegions * w_bytes);
        zeroTarget(sh.lockBase, prog.lockedRegions * w_bytes);
        zeroTarget(sh.ctrBase, prog.counters * 8);
        zeroTarget(sh.casBase, prog.casCounters * 4);

        sh.mutexBase = api::mmap(sync_bytes);
        sh.barrier = sh.mutexBase + prog.mutexes * api::MUTEX_BYTES;
        for (std::uint32_t m = 0; m < prog.mutexes; ++m)
            api::mutexInit(sh.mutexBase + m * api::MUTEX_BYTES);
        api::barrierInit(
            sh.barrier, static_cast<std::uint32_t>(sh.enabledIdx.size()));
        sh.folds.assign(prog.threads, FNV_OFFSET);
        sh.layoutReady = true;
    }
    // else: a later segment. Target memory (regions, mutexes, the
    // barrier) either persisted on the live Simulator or was restored
    // from the checkpoint; re-initializing it would diverge from the
    // uninterrupted run.

    sh.tiles.assign(prog.threads, INVALID_TILE_ID);
    sh.tiles[0] = api::tileId();

    std::vector<ThreadArg> args(prog.threads);
    for (int t = 1; t < prog.threads; ++t) {
        if (!prog.threadEnabled[t])
            continue;
        args[t] = ThreadArg{&sh, t};
        sh.tiles[t] = api::threadSpawn(&fuzzThreadMain, &args[t]);
    }

    runThreadBody(sh, 0); // releases the start barrier

    for (int t = 1; t < prog.threads; ++t)
        if (prog.threadEnabled[t])
            api::threadJoin(sh.tiles[t]);

    // Mid-program segment: leave every allocation and the carried folds
    // in place for the next segment (possibly on a restored Simulator).
    if (sh.lastRound < prog.rounds.size())
        return;

    // Final deterministic fold: per-thread results in index order, then
    // the settled shared state.
    Fold f;
    for (int t : sh.enabledIdx)
        f.add(sh.folds[t]);
    for (std::uint32_t c = 0; c < prog.counters; ++c)
        f.add(api::read<std::uint64_t>(sh.ctrBase + c * 8));
    for (std::uint32_t c = 0; c < prog.casCounters; ++c)
        f.add(api::read<std::uint32_t>(sh.casBase + c * 4));
    std::vector<std::uint32_t> words(prog.regionWords);
    auto fold_region = [&](addr_t base) {
        api::readMem(base, words.data(), w_bytes);
        for (std::uint32_t v : words)
            f.add(v);
    };
    for (std::uint32_t r = 0; r < prog.privateRegions; ++r)
        fold_region(sh.privBase + static_cast<addr_t>(r) * w_bytes);
    for (std::uint32_t r = 0; r < prog.lockedRegions; ++r)
        fold_region(sh.lockBase + static_cast<addr_t>(r) * w_bytes);

    api::free(sh.privBase);
    api::free(sh.lockBase);
    api::free(sh.ctrBase);
    api::free(sh.casBase);
    api::munmap(sh.mutexBase, sync_bytes);
    sh.finalFingerprint = f.h;
}

} // namespace

FuzzResult
runFuzzProgram(const FuzzProgram& prog, const Config& cfg,
               const RunOptions& opt)
{
    Simulator sim(cfg);
    GRAPHITE_ASSERT(prog.activeThreads() < sim.totalTiles());

    HostShared sh;
    sh.prog = &prog;

    ClockWatcher watcher(sim, opt.watcherPeriodUs,
                         opt.periodicValidate ? opt.validateEvery : 0);
    watcher.start();
    SimulationSummary summary;
    try {
        summary = sim.run(&fuzzMain, &sh);
    } catch (...) {
        watcher.stop();
        throw;
    }
    watcher.stop();

    FuzzResult res;
    res.fingerprint = sh.finalFingerprint;
    res.violations = watcher.violations();
    for (std::string& v : checkConservation(sim))
        res.violations.push_back(std::move(v));
    // Race-oracle verdicts: generated programs synchronize every shared
    // access, so the detector must stay silent on a healthy stack.
    if (race::Detector::armed()) {
        race::Detector& det = race::Detector::instance();
        for (const race::RaceRecord& r : det.records())
            res.violations.push_back("race: " + det.describe(r));
    }
    res.simulatedCycles = summary.simulatedCycles;
    res.maxSkew = watcher.maxSkew();
    if (opt.collectStats)
        res.statsReport = sim.statsReport();
    return res;
}

namespace
{

/** Run rounds [first, last) as one run() segment; append watcher
 *  verdicts to @p res. */
SimulationSummary
runSegment(Simulator& sim, HostShared& sh, std::uint64_t first,
           std::uint64_t last, const RunOptions& opt, FuzzResult& res)
{
    sh.firstRound = first;
    sh.lastRound = last;
    ClockWatcher watcher(sim, opt.watcherPeriodUs,
                         opt.periodicValidate ? opt.validateEvery : 0);
    watcher.start();
    SimulationSummary summary;
    try {
        summary = sim.run(&fuzzMain, &sh);
    } catch (...) {
        watcher.stop();
        throw;
    }
    watcher.stop();
    for (std::string& v : watcher.violations())
        res.violations.push_back(std::move(v));
    res.maxSkew = std::max(res.maxSkew, watcher.maxSkew());
    return summary;
}

/** Post-quiescence verdicts after the program's final segment. */
void
finishResult(Simulator& sim, const HostShared& sh, const RunOptions& opt,
             const SimulationSummary& summary, FuzzResult& res)
{
    res.fingerprint = sh.finalFingerprint;
    for (std::string& v : checkConservation(sim))
        res.violations.push_back(std::move(v));
    if (race::Detector::armed()) {
        race::Detector& det = race::Detector::instance();
        for (const race::RaceRecord& r : det.records())
            res.violations.push_back("race: " + det.describe(r));
    }
    res.simulatedCycles = summary.simulatedCycles;
    if (opt.collectStats)
        res.statsReport = sim.statsReport();
}

} // namespace

std::vector<std::uint8_t>
checkpointFuzzProgram(const FuzzProgram& prog, const Config& cfg,
                      std::size_t split_round, const RunOptions& opt,
                      std::vector<std::string>* violations)
{
    HostShared sh;
    sh.prog = &prog;
    FuzzResult scratch;
    Simulator sim(cfg);
    GRAPHITE_ASSERT(prog.activeThreads() < sim.totalTiles());
    runSegment(sim, sh, 0, split_round, opt, scratch);
    if (violations != nullptr)
        for (std::string& v : scratch.violations)
            violations->push_back(std::move(v));
    return snapshot::saveCheckpoint(sim, packAppBlob(sh));
}

FuzzResult
resumeFuzzProgram(const FuzzProgram& prog, const Config& cfg,
                  std::size_t split_round,
                  const std::vector<std::uint8_t>& ckpt,
                  const RunOptions& opt)
{
    HostShared sh;
    sh.prog = &prog;
    FuzzResult res;
    Simulator sim(cfg);
    std::vector<std::uint8_t> blob = snapshot::restoreCheckpoint(sim, ckpt);
    // Save→restore→save identity: re-serializing the freshly restored
    // state must reproduce the checkpoint bit for bit.
    if (snapshot::saveCheckpoint(sim, blob) != ckpt)
        res.violations.push_back(
            "snapshot: save->restore->save is not byte-identical");
    unpackAppBlob(blob, sh);
    finishResult(
        sim, sh, opt,
        runSegment(sim, sh, split_round, prog.rounds.size(), opt, res),
        res);
    return res;
}

FuzzResult
runFuzzProgramSegmented(const FuzzProgram& prog, const Config& cfg,
                        std::size_t split_round, bool through_snapshot,
                        const RunOptions& opt)
{
    GRAPHITE_ASSERT(split_round <= prog.rounds.size());

    if (through_snapshot) {
        // The first Simulator is destroyed with the checkpoint taken;
        // everything segment B needs must come out of the blob.
        std::vector<std::string> violations;
        std::vector<std::uint8_t> ckpt =
            checkpointFuzzProgram(prog, cfg, split_round, opt, &violations);
        FuzzResult res = resumeFuzzProgram(prog, cfg, split_round, ckpt, opt);
        res.violations.insert(res.violations.begin(),
                              std::make_move_iterator(violations.begin()),
                              std::make_move_iterator(violations.end()));
        return res;
    }

    // Paired-schedule reference: the same quiescent pause between the
    // segments, but the Simulator lives on.
    HostShared sh;
    sh.prog = &prog;
    FuzzResult res;
    Simulator sim(cfg);
    GRAPHITE_ASSERT(prog.activeThreads() < sim.totalTiles());
    runSegment(sim, sh, 0, split_round, opt, res);
    finishResult(
        sim, sh, opt,
        runSegment(sim, sh, split_round, prog.rounds.size(), opt, res),
        res);
    return res;
}

ConfigPoint
baselinePoint()
{
    return ConfigPoint{};
}

std::vector<ConfigPoint>
sampleMatrix(std::uint64_t seed, int variants)
{
    std::vector<ConfigPoint> points;
    points.push_back(baselinePoint());

    static const char* SYNCS[] = {"lax", "lax_barrier", "lax_p2p"};
    static const char* DIRS[] = {"full_map", "limited_no_broadcast",
                                 "limitless"};
    static const int PROCS[] = {1, 3, 8};
    static const int LINES[] = {32, 64};
    static const char* CONCS[] = {"sharded", "global"};

    Rng rng(mix(seed, 0xC0F16));
    for (int i = 0; i < variants; ++i) {
        ConfigPoint pt;
        if (i == 0) {
            // Always exercise sharded locking across processes, with
            // the race oracle armed so every seed is race-checked, and
            // spans armed so every seed proves span timing-neutrality.
            pt.processes = 3;
            pt.concurrency = "sharded";
            pt.race = true;
            pt.spans = true;
            pt.accuracy = true;
            pt.syncModel = SYNCS[rng.nextBounded(3)];
            pt.directoryType = DIRS[rng.nextBounded(3)];
            pt.lineSize = LINES[rng.nextBounded(2)];
        } else {
            pt.processes = PROCS[rng.nextBounded(3)];
            pt.concurrency = CONCS[rng.nextBounded(2)];
            pt.syncModel = SYNCS[rng.nextBounded(3)];
            pt.directoryType = DIRS[rng.nextBounded(3)];
            pt.lineSize = LINES[rng.nextBounded(2)];
        }
        pt.slack = rng.nextBounded(2) == 0 ? 2000 : 100000;
        pt.name = strfmt("p{}_{}_{}_l{}_{}{}{}{}", pt.processes,
                         pt.syncModel, pt.directoryType, pt.lineSize,
                         pt.concurrency, pt.race ? "_race" : "",
                         pt.spans ? "_span" : "",
                         pt.accuracy ? "_acc" : "");
        points.push_back(std::move(pt));
    }
    return points;
}

Config
makeFuzzConfig(const ConfigPoint& pt, std::uint64_t seed,
               const std::string& fault_mode)
{
    Config cfg = defaultTargetConfig();
    cfg.setInt("general/total_tiles", 8);
    cfg.setInt("general/num_processes", pt.processes);
    cfg.set("sync/model", pt.syncModel);
    cfg.setInt("sync/quantum", 2000);
    cfg.setInt("sync/slack", static_cast<std::int64_t>(pt.slack));
    cfg.set("caching_protocol/directory_type", pt.directoryType);
    cfg.setInt("caching_protocol/max_sharers", 2);
    cfg.set("mem/host_concurrency", pt.concurrency);
    // Deliberately tiny caches: the program working set must not fit,
    // or capacity evictions (and the dirty-writeback path) never run.
    for (const char* l1 :
         {"perf_model/l1_icache", "perf_model/l1_dcache"}) {
        cfg.setInt(std::string(l1) + "/cache_size", 1024);
        cfg.setInt(std::string(l1) + "/associativity", 2);
        cfg.setInt(std::string(l1) + "/line_size", pt.lineSize);
    }
    cfg.setInt("perf_model/l2_cache/cache_size", 2048);
    cfg.setInt("perf_model/l2_cache/associativity", 2);
    cfg.setInt("perf_model/l2_cache/line_size", pt.lineSize);
    cfg.setInt("rng/seed", static_cast<std::int64_t>(seed | 1));
    cfg.setBool("race/enabled", pt.race);
    cfg.setBool("obs/spans_enabled", pt.spans);
    cfg.setBool("accuracy/enabled", pt.accuracy);
    // The runner applies the full invariant suite itself, with richer
    // reporting than the shutdown fatal().
    cfg.setBool("check/validate_at_shutdown", false);
    cfg.set("check/inject_fault", fault_mode);
    cfg.setInt("check/fault_after", 4);
    cfg.setInt("check/fault_addr_below",
               static_cast<std::int64_t>(AddressSpaceLayout::MMAP_BASE));
    return cfg;
}

} // namespace check
} // namespace graphite
