/**
 * @file
 * Post-run conservation invariants and a concurrent clock/coherence
 * watcher for the fuzz harness.
 *
 * Conservation checks run at quiescence (after Simulator::run returns):
 *  - coherence SWMR / inclusion / data agreement (validateCoherence)
 *  - per-tile counter sums equal the shared atomic aggregates
 *  - network locality counters equal per-model routed packet/byte totals
 *  - target heap fully released (the fuzz program frees everything)
 *
 * The ClockWatcher samples every tile's clock from a host thread while
 * the simulation runs: per-tile clocks are atomics advanced only by the
 * owning thread and every store is monotone, so *any* observed backward
 * step is a hard violation. It can also run validateCoherence()
 * periodically mid-run — the quiesce composes with concurrent traffic —
 * which catches transient SWMR violations that self-heal before
 * shutdown (e.g. an injected skip_release_fence leaving a stale L1
 * copy that a later invalidation would erase).
 */

#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"

namespace graphite
{

class Simulator;

namespace check
{

/** @return violation descriptions; empty when every invariant holds. */
std::vector<std::string> checkConservation(Simulator& sim);

/** Concurrent monotonicity + periodic-coherence prober. */
class ClockWatcher
{
  public:
    /**
     * @param period_us        host microseconds between clock samples
     * @param validate_every   run validateCoherence() every N samples;
     *                         0 disables mid-run coherence probing
     */
    ClockWatcher(Simulator& sim, int period_us, int validate_every);
    ~ClockWatcher();

    void start();
    void stop(); ///< idempotent; joins the watcher thread

    std::vector<std::string> violations() const;

    /** Largest clock spread observed among concurrently running tiles. */
    cycle_t maxSkew() const;

  private:
    void loop();

    Simulator& sim_;
    int periodUs_;
    int validateEvery_;
    std::thread thread_;
    std::atomic<bool> stopFlag_{false};
    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::invariants};
    std::vector<std::string> violations_;
    cycle_t maxSkew_ = 0;
    std::vector<cycle_t> lastSeen_;
};

} // namespace check
} // namespace graphite
