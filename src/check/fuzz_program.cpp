#include "check/fuzz_program.h"

#include <sstream>

#include "common/rng.h"

namespace graphite
{
namespace check
{

namespace
{

const char*
kindName(ActionKind k)
{
    switch (k) {
      case ActionKind::PrivateRw: return "private_rw";
      case ActionKind::SharedAtomic: return "shared_atomic";
      case ActionKind::CasAccumulate: return "cas_accumulate";
      case ActionKind::MutexSection: return "mutex_section";
      case ActionKind::Scratch: return "scratch";
      case ActionKind::Compute: return "compute";
    }
    return "?";
}

ActionKind
pickKind(Rng& rng)
{
    // Weighted mix; coherence-heavy kinds dominate.
    std::uint64_t w = rng.nextBounded(100);
    if (w < 25)
        return ActionKind::PrivateRw;
    if (w < 45)
        return ActionKind::SharedAtomic;
    if (w < 55)
        return ActionKind::CasAccumulate;
    if (w < 75)
        return ActionKind::MutexSection;
    if (w < 85)
        return ActionKind::Scratch;
    return ActionKind::Compute;
}

} // namespace

FuzzProgram
FuzzProgram::generate(std::uint64_t seed, const GenLimits& limits)
{
    FuzzProgram p;
    p.seed = seed;
    Rng rng(seed ^ 0x9E3779B97F4A7C15ull);

    int max_threads = limits.maxThreads < 1 ? 1 : limits.maxThreads;
    p.threads =
        max_threads == 1
            ? 1
            : 2 + static_cast<int>(rng.nextBounded(max_threads - 1));
    p.privateRegions = 1 + static_cast<std::uint32_t>(rng.nextBounded(2));
    p.lockedRegions = 1 + static_cast<std::uint32_t>(rng.nextBounded(2));
    p.regionWords =
        48 + 16 * static_cast<std::uint32_t>(rng.nextBounded(4));
    p.counters = 1 + static_cast<std::uint32_t>(rng.nextBounded(3));
    p.casCounters = 1 + static_cast<std::uint32_t>(rng.nextBounded(2));
    p.mutexes = 1 + static_cast<std::uint32_t>(rng.nextBounded(2));
    p.threadEnabled.assign(p.threads, 1);

    std::size_t num_rounds = 3 + rng.nextBounded(4);
    p.rounds.resize(num_rounds);
    for (FuzzRound& round : p.rounds) {
        round.barrierAfter = rng.nextBounded(100) < 70;
        round.msgRing =
            limits.allowMsgRing && p.threads > 1 && rng.nextBounded(100) < 35;
        round.respawn = limits.allowRespawn && rng.nextBounded(100) < 30;
        round.actions.resize(p.threads);
        for (int t = 0; t < p.threads; ++t) {
            std::size_t n = 1 + rng.nextBounded(4);
            round.actions[t].resize(n);
            for (FuzzAction& a : round.actions[t]) {
                a.kind = pickKind(rng);
                a.region = static_cast<std::uint32_t>(rng.nextBounded(
                    a.kind == ActionKind::MutexSection ? p.lockedRegions
                                                       : p.privateRegions));
                a.counter = static_cast<std::uint32_t>(rng.nextBounded(
                    a.kind == ActionKind::CasAccumulate ? p.casCounters
                                                        : p.counters));
                a.ops =
                    4 + static_cast<std::uint32_t>(rng.nextBounded(12));
                a.valueSeed = rng.next();
            }
        }
    }
    return p;
}

int
FuzzProgram::activeThreads() const
{
    int n = 0;
    for (char e : threadEnabled)
        n += e ? 1 : 0;
    return n > 0 ? n : 1;
}

std::size_t
FuzzProgram::enabledActions() const
{
    std::size_t n = 0;
    for (const FuzzRound& round : rounds) {
        if (!round.enabled)
            continue;
        for (int t = 0; t < threads; ++t) {
            if (!threadEnabled[t])
                continue;
            for (const FuzzAction& a : round.actions[t])
                n += a.enabled ? 1 : 0;
        }
    }
    return n;
}

std::string
FuzzProgram::describe() const
{
    std::ostringstream os;
    os << "seed 0x" << std::hex << seed << std::dec << "\n";
    os << "threads " << threads << " (enabled";
    for (int t = 0; t < threads; ++t)
        if (threadEnabled[t])
            os << " " << t;
    os << ")\n";
    os << "private regions " << privateRegions << " x " << regionWords
       << " words, locked regions " << lockedRegions << ", counters "
       << counters << ", cas counters " << casCounters << ", mutexes "
       << mutexes << "\n";
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        const FuzzRound& round = rounds[r];
        if (!round.enabled) {
            os << "round " << r << ": disabled\n";
            continue;
        }
        os << "round " << r << ":";
        if (round.msgRing)
            os << " [ring]";
        if (round.respawn)
            os << " [respawn]";
        if (round.barrierAfter)
            os << " [barrier]";
        os << "\n";
        for (int t = 0; t < threads; ++t) {
            if (!threadEnabled[t])
                continue;
            os << "  t" << t << ":";
            for (const FuzzAction& a : round.actions[t]) {
                if (!a.enabled) {
                    os << " (off)";
                    continue;
                }
                os << " " << kindName(a.kind) << "(r" << a.region << ",c"
                   << a.counter << ",x" << a.ops << ")";
            }
            os << "\n";
        }
    }
    return os.str();
}

} // namespace check
} // namespace graphite
