/**
 * @file
 * Executes a FuzzProgram on one simulator configuration and samples the
 * configuration matrix the differential sweep runs each seed across.
 *
 * runFuzzProgram() builds a Simulator from the given Config, runs the
 * program with a ClockWatcher attached (clock monotonicity + optional
 * periodic coherence probing), then runs the post-quiescence
 * conservation suite. The returned fingerprint must be identical for
 * the same program across every configuration in the matrix.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/fixed_types.h"
#include "check/fuzz_program.h"

namespace graphite
{
namespace check
{

struct RunOptions
{
    bool periodicValidate = true; ///< probe coherence mid-run
    int watcherPeriodUs = 300;
    int validateEvery = 8; ///< coherence probe every N clock samples
    bool collectStats = false; ///< fill FuzzResult::statsReport
};

struct FuzzResult
{
    std::uint64_t fingerprint = 0;
    std::vector<std::string> violations;
    cycle_t simulatedCycles = 0;
    cycle_t maxSkew = 0;
    std::string statsReport;
};

/**
 * Run @p prog under @p cfg. Throws FatalError on configuration errors
 * or a failed shutdown validation; protocol invariant breaks surface in
 * FuzzResult::violations.
 */
FuzzResult runFuzzProgram(const FuzzProgram& prog, const Config& cfg,
                          const RunOptions& opt = {});

/**
 * Run @p prog in two segments split at round @p split_round (rounds
 * [0, split) then [split, end)). With @p through_snapshot false both
 * segments are run() calls on ONE Simulator — the paired-schedule
 * reference. With it true, the first segment's quiescent state is
 * checkpointed (snapshot/checkpoint.h), the Simulator is destroyed,
 * and a fresh Simulator restored from the blob runs the second
 * segment; the restored state is also immediately re-saved and any
 * byte difference from the original checkpoint is reported as a
 * violation. Both paths must reproduce runFuzzProgram's fingerprint,
 * and under `host/scheduler = deterministic` the through-snapshot run
 * must match the paired reference cycle for cycle — this is the fuzz
 * matrix's checkpoint/resume verdict source.
 */
FuzzResult runFuzzProgramSegmented(const FuzzProgram& prog,
                                   const Config& cfg,
                                   std::size_t split_round,
                                   bool through_snapshot,
                                   const RunOptions& opt = {});

/**
 * Run rounds [0, @p split_round) of @p prog on a fresh Simulator and
 * return the sealed checkpoint of its quiescent state (workload
 * bookkeeping rides in the application blob). Segment-A watcher
 * violations are appended to @p violations when given.
 */
std::vector<std::uint8_t>
checkpointFuzzProgram(const FuzzProgram& prog, const Config& cfg,
                      std::size_t split_round, const RunOptions& opt = {},
                      std::vector<std::string>* violations = nullptr);

/**
 * Restore @p ckpt into a fresh Simulator and run rounds
 * [@p split_round, end) of @p prog. Every resume also re-saves the
 * restored state and reports any byte difference from @p ckpt as a
 * violation (save→restore→save identity). The golden-snapshot fixture
 * test replays a committed checkpoint through this entry point.
 */
FuzzResult resumeFuzzProgram(const FuzzProgram& prog, const Config& cfg,
                             std::size_t split_round,
                             const std::vector<std::uint8_t>& ckpt,
                             const RunOptions& opt = {});

/** One point of the configuration matrix (8-tile target). */
struct ConfigPoint
{
    std::string name = "baseline";
    int processes = 1;
    std::string syncModel = "lax";
    cycle_t slack = 100000; ///< LaxP2P only
    std::string directoryType = "full_map";
    int lineSize = 64;
    std::string concurrency = "global";
    /** Arm the happens-before race detector (src/race). Fuzz programs
     *  are race-free by construction, so any report is a violation —
     *  either a detector false positive or a missing sync edge. */
    bool race = false;
    /** Arm the span engine (src/obs/span) without an output file. The
     *  fingerprint-equality sweep then proves span instrumentation is
     *  timing-neutral: an armed run must reproduce the baseline's
     *  architectural fingerprint bit for bit. */
    bool spans = false;
    /** Arm the accuracy observatory (src/obs/accuracy) without a
     *  report file. Same fingerprint-equality argument as spans:
     *  causality detection only reads clocks, so an armed run must be
     *  architecturally indistinguishable from the baseline. */
    bool accuracy = false;
};

/** The fixed reference point every variant is compared against. */
ConfigPoint baselinePoint();

/**
 * Baseline plus @p variants seed-sampled points over
 * {1,3,8 processes} x {lax, lax_barrier, lax_p2p} x
 * {full_map, limited_no_broadcast, limitless} x {32,64-byte lines} x
 * {sharded, global}. The first variant always enables sharded locking
 * on 3 processes so every seed exercises cross-process + concurrent
 * paths.
 */
std::vector<ConfigPoint> sampleMatrix(std::uint64_t seed, int variants);

/**
 * Materialize a Config for @p pt: 8 tiles, deliberately small caches
 * (so capacity evictions and writebacks happen), shutdown validation
 * off (the runner applies the richer invariant suite itself), and
 * fault injection per @p fault_mode with the address filter set to the
 * mmap base so sync words are never corrupted.
 */
Config makeFuzzConfig(const ConfigPoint& pt, std::uint64_t seed,
                      const std::string& fault_mode = "none");

} // namespace check
} // namespace graphite
