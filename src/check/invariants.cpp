#include "check/invariants.h"

#include <algorithm>
#include <chrono>

#include "common/lockdep.h"
#include "common/strfmt.h"
#include "core/simulator.h"

namespace graphite
{
namespace check
{

std::vector<std::string>
checkConservation(Simulator& sim)
{
    std::vector<std::string> out;
    MemorySystem& mem = sim.memory();

    std::string coherence = mem.validateCoherence();
    if (!coherence.empty())
        out.push_back("coherence: " + coherence);

    // Shared atomic aggregates must equal the per-tile sums at
    // quiescence (PR 2's sharded-locking contract).
    stat_t accesses = 0, writebacks = 0, l2_misses = 0;
    for (tile_id_t t = 0; t < sim.totalTiles(); ++t) {
        accesses += mem.stats(t).totalAccesses;
        writebacks += mem.stats(t).writebacks;
        l2_misses += mem.l2(t).misses();
    }
    stat_t agg_accesses = mem.totalAccessesCounter()->load();
    stat_t agg_writebacks = mem.writebacksCounter()->load();
    stat_t agg_l2 = mem.l2MissesCounter()->load();
    if (accesses != agg_accesses)
        out.push_back(strfmt("counter sum: per-tile accesses {} != "
                             "aggregate {}",
                             accesses, agg_accesses));
    if (writebacks != agg_writebacks)
        out.push_back(strfmt("counter sum: per-tile writebacks {} != "
                             "aggregate {}",
                             writebacks, agg_writebacks));
    if (l2_misses != agg_l2)
        out.push_back(strfmt("counter sum: per-tile L2 misses {} != "
                             "aggregate {}",
                             l2_misses, agg_l2));

    // Every packet the fabric timed was classified as exactly one of
    // intra-/inter-process, and its bytes likewise.
    const NetworkFabric& fabric = sim.fabric();
    auto net_check = [&](PacketType type, const char* tag) {
        stat_t routed = fabric.modelFor(type).packetsRouted();
        stat_t split = fabric.intraProcessMessages(type) +
                       fabric.interProcessMessages(type);
        if (routed != split)
            out.push_back(strfmt("network {}: routed {} packets but "
                                 "locality counters sum to {}",
                                 tag, routed, split));
        stat_t bytes = fabric.modelFor(type).bytesRouted();
        stat_t byte_split = fabric.intraProcessBytes(type) +
                            fabric.interProcessBytes(type);
        if (bytes != byte_split)
            out.push_back(strfmt("network {}: routed {} bytes but "
                                 "locality counters sum to {}",
                                 tag, bytes, byte_split));
    };
    net_check(PacketType::App, "app");
    net_check(PacketType::Memory, "memory");
    net_check(PacketType::System, "system");

    // The fuzz program frees every allocation it makes, so nothing may
    // be live at quiescence (bytesAllocated() is cumulative; the live
    // set is what conservation cares about).
    MemoryManager& mgr = mem.manager();
    if (mgr.liveBytes() != 0 || mgr.liveBlockCount() != 0)
        out.push_back(strfmt("heap: {} bytes in {} blocks still live "
                             "after shutdown",
                             mgr.liveBytes(), mgr.liveBlockCount()));
    return out;
}

ClockWatcher::ClockWatcher(Simulator& sim, int period_us,
                           int validate_every)
    : sim_(sim), periodUs_(period_us), validateEvery_(validate_every)
{
    lastSeen_.assign(sim.totalTiles(), 0);
}

ClockWatcher::~ClockWatcher()
{
    stop();
}

void
ClockWatcher::start()
{
    stopFlag_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { loop(); });
}

void
ClockWatcher::stop()
{
    stopFlag_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
}

void
ClockWatcher::loop()
{
    std::uint64_t ticks = 0;
    while (!stopFlag_.load(std::memory_order_relaxed)) {
        cycle_t lo = 0, hi = 0;
        bool any = false;
        for (tile_id_t t = 0; t < sim_.totalTiles(); ++t) {
            Tile& tile = sim_.tile(t);
            cycle_t c = tile.core().cycle();
            if (c < lastSeen_[t]) {
                lockdep::Guard lock(mutex_);
                if (violations_.size() < 8)
                    violations_.push_back(
                        strfmt("clock: tile {} moved backwards "
                               "({} -> {})",
                               t, lastSeen_[t], c));
            }
            lastSeen_[t] = std::max(lastSeen_[t], c);
            if (tile.running() && c > 0) {
                if (!any || c < lo)
                    lo = c;
                if (!any || c > hi)
                    hi = c;
                any = true;
            }
        }
        if (any) {
            lockdep::Guard lock(mutex_);
            maxSkew_ = std::max(maxSkew_, hi - lo);
        }

        ++ticks;
        if (validateEvery_ > 0 && ticks % validateEvery_ == 0) {
            std::string err = sim_.memory().validateCoherence();
            if (!err.empty()) {
                lockdep::Guard lock(mutex_);
                violations_.push_back("coherence (mid-run): " + err);
                return; // one report is enough; stop probing
            }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(periodUs_));
    }
}

std::vector<std::string>
ClockWatcher::violations() const
{
    lockdep::Guard lock(mutex_);
    return violations_;
}

cycle_t
ClockWatcher::maxSkew() const
{
    lockdep::Guard lock(mutex_);
    return maxSkew_;
}

} // namespace check
} // namespace graphite
