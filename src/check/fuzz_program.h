/**
 * @file
 * Seeded random workload programs over the graphite::api surface.
 *
 * A FuzzProgram is generated deterministically from a single 64-bit seed
 * and executed on any simulator configuration. Programs are designed so
 * that their *functional result* — folded into a 64-bit fingerprint — is
 * independent of thread interleaving and of every timing-model knob:
 *
 *  - private-region reads/writes fold read-back values only from a
 *    thread's own slice (heavy false sharing, no data races);
 *  - shared counters accumulate commutative atomic adds / CAS loops, and
 *    only the *final* values are folded;
 *  - mutex-protected regions take commutative read-modify-writes under
 *    a lock, folding only the final contents;
 *  - message rings exchange seed-derived tokens between adjacent
 *    threads (single sender per receiver, so FIFO order is total);
 *  - transient respawn children run private scratch workloads.
 *
 * Equal fingerprints across the config matrix is the differential
 * oracle; a mismatch means a functional bug in the memory/sync/network
 * stack (or an injected fault doing its job).
 *
 * Shrinking flips `enabled` bits at three granularities — whole threads,
 * whole rounds, individual actions — which keeps barrier participant
 * counts and ring membership consistent by construction.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphite
{
namespace check
{

/** One unit of work a thread performs inside a round. */
enum class ActionKind : std::uint8_t
{
    PrivateRw,    ///< write+readback in the thread's own region slice
    SharedAtomic, ///< plain warm read + atomicAdd64 on a shared counter
    CasAccumulate,///< CAS-loop accumulation on a 32-bit counter
    MutexSection, ///< commutative RMWs on a region under its mutex
    Scratch,      ///< malloc/write/readback/free of a private block
    Compute,      ///< instruction + branch events only
};

struct FuzzAction
{
    ActionKind kind = ActionKind::Compute;
    std::uint32_t region = 0;  ///< private or locked region index
    std::uint32_t counter = 0; ///< counter index (atomic / cas pools)
    std::uint32_t ops = 1;     ///< inner operation count
    std::uint64_t valueSeed = 0;
    bool enabled = true;
};

/** One bulk-synchronous phase of the program. */
struct FuzzRound
{
    bool barrierAfter = false;
    bool msgRing = false; ///< each thread sends a token to its successor
    bool respawn = false; ///< main spawns + joins one transient child
    bool enabled = true;
    /** actions[threadIdx] — indexed by persistent thread, incl. main. */
    std::vector<std::vector<FuzzAction>> actions;
};

/** Knobs for generate(); defaults fit an 8-tile target. */
struct GenLimits
{
    int maxThreads = 6;       ///< persistent threads incl. main
    bool allowRespawn = true; ///< transient thread spawns
    bool allowMsgRing = true; ///< user-level messaging rounds
};

struct FuzzProgram
{
    std::uint64_t seed = 0;
    int threads = 1; ///< persistent threads incl. main (thread 0)
    std::uint32_t privateRegions = 1;
    std::uint32_t lockedRegions = 1;
    std::uint32_t regionWords = 64; ///< 32-bit words per region
    std::uint32_t counters = 1;     ///< 64-bit atomic-add counters
    std::uint32_t casCounters = 1;  ///< 32-bit CAS counters
    std::uint32_t mutexes = 1;
    std::vector<FuzzRound> rounds;
    /** Shrink mask; threadEnabled[0] (main) is always true. */
    std::vector<char> threadEnabled;

    static FuzzProgram generate(std::uint64_t seed,
                                const GenLimits& limits = {});

    /** Enabled persistent threads (>= 1; main always counts). */
    int activeThreads() const;

    /** Enabled actions across enabled threads in enabled rounds. */
    std::size_t enabledActions() const;

    /** Human-readable listing, written into reproducer artifacts. */
    std::string describe() const;
};

} // namespace check
} // namespace graphite
