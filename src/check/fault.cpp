#include "check/fault.h"

#include "common/config.h"
#include "common/log.h"

namespace graphite
{
namespace check
{

std::atomic<bool> FaultPlan::armedFlag_{false};

FaultPlan&
FaultPlan::instance()
{
    static FaultPlan plan;
    return plan;
}

void
FaultPlan::configure(const Config& cfg)
{
    mode_ = parseMode(cfg.getString("check/inject_fault", "none"));
    after_ = static_cast<std::uint64_t>(
        cfg.getInt("check/fault_after", 4));
    addrBelow_ =
        static_cast<addr_t>(cfg.getInt("check/fault_addr_below", 0));
    opportunities_.store(0, std::memory_order_relaxed);
    fired_.store(0, std::memory_order_relaxed);
    armedFlag_.store(mode_ != FaultMode::None,
                     std::memory_order_relaxed);
    if (mode_ != FaultMode::None)
        warn("fault injection armed: {} after {} opportunities",
             modeName(mode_), after_);
}

void
FaultPlan::disarm()
{
    mode_ = FaultMode::None;
    armedFlag_.store(false, std::memory_order_relaxed);
}

bool
FaultPlan::shouldFire(FaultMode mode, addr_t line_addr)
{
    if (mode != mode_)
        return false;
    if (addrBelow_ != 0 && line_addr >= addrBelow_)
        return false;
    std::uint64_t n =
        opportunities_.fetch_add(1, std::memory_order_relaxed);
    if (n < after_)
        return false;
    fired_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
FaultPlan::opportunities() const
{
    return opportunities_.load(std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::fired() const
{
    return fired_.load(std::memory_order_relaxed);
}

FaultMode
FaultPlan::parseMode(const std::string& name)
{
    if (name.empty() || name == "none")
        return FaultMode::None;
    if (name == "drop_invalidation")
        return FaultMode::DropInvalidation;
    if (name == "stale_dram_fill")
        return FaultMode::StaleDramFill;
    if (name == "lost_writeback")
        return FaultMode::LostWriteback;
    if (name == "skip_release_fence")
        return FaultMode::SkipReleaseFence;
    if (name == "late_delivery")
        return FaultMode::LateDelivery;
    fatal("check/inject_fault: unknown mode '{}'", name);
}

const char*
FaultPlan::modeName(FaultMode mode)
{
    switch (mode) {
      case FaultMode::None: return "none";
      case FaultMode::DropInvalidation: return "drop_invalidation";
      case FaultMode::StaleDramFill: return "stale_dram_fill";
      case FaultMode::LostWriteback: return "lost_writeback";
      case FaultMode::SkipReleaseFence: return "skip_release_fence";
      case FaultMode::LateDelivery: return "late_delivery";
    }
    return "?";
}

const std::vector<FaultMode>&
FaultPlan::allModes()
{
    // LateDelivery is deliberately absent: it perturbs only packet
    // timestamps, never data, so the differential sweep's fingerprint
    // cannot detect it — the accuracy observatory's violation counter
    // does (tests/test_accuracy.cpp). Listing it here would fail the
    // fuzz detection drill, which requires a fingerprint mismatch.
    static const std::vector<FaultMode> modes = {
        FaultMode::DropInvalidation,
        FaultMode::StaleDramFill,
        FaultMode::LostWriteback,
        FaultMode::SkipReleaseFence,
    };
    return modes;
}

} // namespace check
} // namespace graphite
