/**
 * @file
 * Deliberate protocol fault injection for the fuzz harness.
 *
 * The memory system is self-verifying (PAPER.md §3.3): functional data
 * movement *is* the modeled coherence protocol, so a protocol bug must
 * corrupt program results or trip an invariant. The fuzz harness proves
 * it has teeth by arming one of these faults and demonstrating that the
 * differential sweep detects it within a bounded seed budget.
 *
 * Config keys (see graphite.cfg [check]):
 *   check/inject_fault      none | drop_invalidation | stale_dram_fill |
 *                           lost_writeback | skip_release_fence |
 *                           late_delivery
 *   check/fault_after       opportunities to let pass before firing
 *                           (spares setup traffic; default 4)
 *   check/fault_addr_below  only fire on lines below this address
 *                           (0 = everywhere; the harness passes the mmap
 *                           base so sync words stay intact and a fault
 *                           manifests as a detectable corruption rather
 *                           than a deadlock)
 *
 * Like obs::Observability, the plan is process-global and re-configured
 * by each Simulator's constructor; the armed flag keeps the fully
 * disabled hot path to one relaxed atomic load.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_types.h"

namespace graphite
{

class Config;

namespace check
{

/** Which protocol step to sabotage. */
enum class FaultMode : std::uint8_t
{
    None = 0,
    DropInvalidation,  ///< a sharer keeps its stale copy on S->M
    StaleDramFill,     ///< DRAM fill returns one flipped bit
    LostWriteback,     ///< dirty L2 eviction never reaches memory
    SkipReleaseFence,  ///< atomic RMW skips the L1 write-through sync
    LateDelivery,      ///< packet stamped with its send time (timing
                       ///< only, data intact) — plants a guaranteed
                       ///< causality violation for the accuracy
                       ///< observatory's detection tests
};

/** Process-global fault schedule. */
class FaultPlan
{
  public:
    static FaultPlan& instance();

    /** Read the [check] keys and (re)arm; resets all counters. */
    void configure(const Config& cfg);

    /** Disable injection (counters keep their values). */
    void disarm();

    /** Cheap hot-path guard: any fault armed in this process? */
    static bool
    armed()
    {
        return armedFlag_.load(std::memory_order_relaxed);
    }

    /**
     * Record an opportunity for @p mode on the line at @p line_addr and
     * decide whether to sabotage it. Fires on every opportunity past
     * `check/fault_after` that survives the address filter.
     */
    bool shouldFire(FaultMode mode, addr_t line_addr);

    FaultMode mode() const { return mode_; }
    std::uint64_t opportunities() const;
    std::uint64_t fired() const;

    /** @return the mode named @p name; fatal() on an unknown name. */
    static FaultMode parseMode(const std::string& name);
    static const char* modeName(FaultMode mode);
    /** Every injectable mode (excludes "none"), for harness drills. */
    static const std::vector<FaultMode>& allModes();

  private:
    FaultPlan() = default;

    static std::atomic<bool> armedFlag_;

    FaultMode mode_ = FaultMode::None;
    std::uint64_t after_ = 0;
    addr_t addrBelow_ = 0; ///< 0 = no filter
    std::atomic<std::uint64_t> opportunities_{0};
    std::atomic<std::uint64_t> fired_{0};
};

} // namespace check
} // namespace graphite
