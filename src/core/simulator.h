/**
 * @file
 * Top-level simulator: owns every subsystem and drives a simulation
 * (paper §2).
 *
 * A simulation executes a multi-threaded application (written against
 * graphite::api, the Pin-substitute instrumentation interface — see
 * DESIGN.md) on a target architecture defined by the models and the
 * runtime configuration. Tiles are striped across simulated host
 * processes; the MCP/LCP service threads maintain the single-process
 * illusion.
 *
 * Usage:
 * @code
 *   Config cfg = defaultTargetConfig();
 *   cfg.setInt("general/total_tiles", 64);
 *   Simulator sim(cfg);
 *   sim.run(&app_main, nullptr);
 *   cycle_t t = sim.simulatedTime();
 * @endcode
 */

#pragma once

#include <memory>
#include <vector>

#include "common/config.h"
#include "common/fixed_types.h"
#include "common/stats.h"
#include "core/thread_manager.h"
#include "host/scheduler.h"
#include "core/tile.h"
#include "mem/memory_system.h"
#include "network/network.h"
#include "obs/telemetry/server.h"
#include "obs/telemetry/watchdog.h"
#include "sync/skew_tracker.h"
#include "sync/sync_model.h"
#include "transport/transport.h"

namespace graphite
{

/** Aggregate results of one simulation run. */
struct SimulationSummary
{
    cycle_t simulatedCycles = 0;   ///< max final tile clock
    stat_t totalInstructions = 0;  ///< across all tiles
    double wallSeconds = 0;        ///< host wall-clock of run()
    stat_t threadsSpawned = 0;
};

/** The simulation: models + functional infrastructure + lifecycle. */
class Simulator
{
  public:
    explicit Simulator(Config cfg);
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /**
     * Execute the application: @p app_main runs as the thread on tile 0;
     * it may spawn further threads via the API. Returns when every
     * application thread has finished and the MCP has shut down.
     */
    SimulationSummary run(thread_func_t app_main, void* arg);

    /** @name Component access @{ */
    const Config& config() const { return cfg_; }
    const ClusterTopology& topology() const { return topo_; }
    Transport& transport() { return *transport_; }
    NetworkFabric& fabric() { return *fabric_; }
    const NetworkFabric& fabric() const { return *fabric_; }
    MemorySystem& memory() { return *memory_; }
    SyncModel& syncModel() { return *sync_; }
    ThreadManager& threadManager() { return *threads_; }
    /** Host execution scheduler; null when host/scheduler = off. */
    host::HostScheduler* hostScheduler() { return sched_.get(); }
    Tile& tile(tile_id_t id);
    tile_id_t totalTiles() const { return topo_.totalTiles(); }
    /** @} */

    /** Largest tile clock observed (the simulated run time). */
    cycle_t simulatedTime() const;

    /** Sum of instructions retired on all tiles. */
    stat_t totalInstructions() const;

    /**
     * Render a full post-run statistics report: run summary, per-tile
     * core/cache/miss-class tables, network-model totals, sync-model
     * overhead, and memory-manager usage. Call after run().
     */
    std::string statsReport() const;

    /** Attach an optional skew tracker (Figure 7 experiments). */
    void attachSkewTracker(SkewTracker* tracker);
    SkewTracker* skewTracker() { return skew_; }

    /**
     * The simulation's statistics registry: gauges over every model's
     * headline counters plus the memory-latency histogram, registered
     * at construction. Input of the obs-layer interval sampler.
     */
    const StatsRegistry& stats() const { return stats_; }

    /**
     * @name Telemetry plane
     * The HTTP server starts with run() when telemetry/http_port >= 0
     * and keeps serving until the Simulator dies, so a prober can
     * scrape final values after run() returns (--telemetry-linger).
     * The watchdog beats only while run() is in flight.
     * @{
     */
    obs::telemetry::TelemetryServer& telemetryServer()
    {
        return telemetryServer_;
    }
    obs::telemetry::ProgressWatchdog& watchdog() { return watchdog_; }
    /** Build the live-status callbacks for servers/watchdogs/tests. */
    obs::telemetry::StatusSource makeStatusSource();
    /** @} */

    /**
     * @name Fast-forward ROI control
     * With config `snapshot/fast_forward = true`, run() starts in
     * functional-only warmup mode (see MemorySystem::setFastForward)
     * and switches to detailed timing at api::roiBegin() or when a
     * tile clock reaches `snapshot/ff_detail_at` (0 = marker only).
     * @{
     */
    bool fastForwardConfigured() const { return ffEnabled_; }
    cycle_t fastForwardDetailAt() const { return ffDetailAt_; }
    bool fastForwarding() const { return memory_->fastForward(); }
    /** Resume warmup mode after an ROI (no-op unless configured). */
    void beginFastForward()
    {
        if (ffEnabled_)
            memory_->setFastForward(true);
    }
    /** Enter detailed timing (ROI begin / threshold reached). */
    void endFastForward() { memory_->setFastForward(false); }
    /** @} */

    /** Cycles between periodic sync-model checks. */
    cycle_t syncCheckInterval() const { return syncCheckInterval_; }

    /** Modeled cost of one system call round trip, cycles. */
    cycle_t syscallCost() const { return syscallCost_; }

    /** Modeled cost charged to a freshly spawned thread, cycles. */
    cycle_t spawnCost() const { return spawnCost_; }

    /**
     * The simulator the calling application thread belongs to.
     * Valid only inside run() on application threads.
     */
    static Simulator* current();

  private:
    friend class ThreadManager;
    static Simulator*& currentSlot();

    void registerStats();

    Config cfg_;
    ClusterTopology topo_;
    std::unique_ptr<Transport> transport_;
    std::unique_ptr<NetworkFabric> fabric_;
    std::unique_ptr<MemorySystem> memory_;
    std::unique_ptr<SyncModel> sync_;
    std::vector<std::unique_ptr<Tile>> tiles_;
    // Destroyed after threads_, whose app/MCP threads use it.
    std::unique_ptr<host::HostScheduler> sched_;
    std::unique_ptr<ThreadManager> threads_;
    StatsRegistry stats_;
    SkewTracker* skew_ = nullptr;
    cycle_t syncCheckInterval_;
    cycle_t syscallCost_;
    cycle_t spawnCost_;
    bool ffEnabled_ = false;
    cycle_t ffDetailAt_ = 0;

    // Telemetry plane. Declared last so both host threads die before
    // the components their status callbacks read.
    int telemetryPort_ = -1; ///< -1 off, 0 ephemeral, >0 fixed
    bool watchdogEnabled_ = false;
    obs::telemetry::WatchdogConfig watchdogConfig_;
    obs::telemetry::TelemetryServer telemetryServer_;
    obs::telemetry::ProgressWatchdog watchdog_;
};

} // namespace graphite
