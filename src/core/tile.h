/**
 * @file
 * A target tile: compute core model + network endpoint (paper §2).
 *
 * "Each tile is composed of a compute core, a network switch and a part
 * of the memory subsystem." The memory-system slice (caches, directory
 * slice, DRAM controller) is owned by the simulation-wide MemorySystem
 * and indexed by tile id; the Tile aggregates the per-tile core model and
 * network endpoint and tracks thread occupancy.
 */

#pragma once

#include <atomic>
#include <memory>

#include "common/fixed_types.h"
#include "network/network.h"
#include "perf/core_model.h"

namespace graphite
{

class Config;

/** One simulated tile. */
class Tile
{
  public:
    Tile(tile_id_t id, const Config& cfg, NetworkFabric& fabric,
         Transport& transport)
        : id_(id),
          core_(std::make_unique<CoreModel>(id, cfg)),
          network_(std::make_unique<Network>(id, fabric, transport))
    {}

    tile_id_t id() const { return id_; }
    CoreModel& core() { return *core_; }
    const CoreModel& core() const { return *core_; }
    Network& network() { return *network_; }

    /** True while an application thread occupies this tile. */
    bool occupied() const { return occupied_.load(); }
    void setOccupied(bool v) { occupied_.store(v); }

    /**
     * True while the occupying thread is runnable (not blocked in a
     * system call or application synchronization). Maintained by the
     * API layer; read by the skew tracker.
     */
    bool running() const { return running_.load(); }
    void setRunning(bool v) { running_.store(v); }
    const std::atomic<bool>* runningFlag() const { return &running_; }

  private:
    tile_id_t id_;
    std::unique_ptr<CoreModel> core_;
    std::unique_ptr<Network> network_;
    std::atomic<bool> occupied_{false};
    std::atomic<bool> running_{false};
};

} // namespace graphite
