/**
 * @file
 * Threading infrastructure and consistent OS interface:
 * the MCP and LCP service threads (paper §2.2, §3.4, §3.5).
 *
 * "Graphite spawns additional threads called the Master Control Program
 * (MCP) and the Local Control Program (LCP). There is one LCP per process
 * but only one MCP for the entire simulation. The MCP and LCP ensure the
 * functional correctness of the simulation by providing services for
 * synchronization, system call execution and thread management."
 *
 * Thread management (§3.5): spawn requests are intercepted at the callee,
 * forwarded to the MCP which picks an available tile and forwards the
 * request to the owning process's LCP; the LCP creates the host thread.
 * Joins synchronize through the MCP.
 *
 * System calls (§3.4): futex emulation and file I/O execute *at the MCP*
 * so all simulated processes observe one consistent kernel state.
 */

#pragma once

#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"
#include "core/sys_msg.h"
#include "network/net_packet.h"
#include "obs/telemetry/status.h"
#include "transport/transport.h"

namespace graphite
{

class Simulator;

namespace snapshot
{
class SnapshotWriter;
class SnapshotReader;
} // namespace snapshot

/** Application thread entry point (pthread-style). */
using thread_func_t = void (*)(void*);

/**
 * Owns the MCP thread, the per-process LCP threads, the tile allocation
 * table, the futex wait queues, and the MCP-resident file table.
 */
class ThreadManager
{
  public:
    explicit ThreadManager(Simulator& sim);
    ~ThreadManager();

    ThreadManager(const ThreadManager&) = delete;
    ThreadManager& operator=(const ThreadManager&) = delete;

    /** Start the MCP and LCP service threads. */
    void start();

    /**
     * Launch the application's main thread on tile 0 and return
     * immediately; Simulator::run() waits for completion via
     * waitForShutdown().
     */
    void launchMain(thread_func_t func, void* arg);

    /**
     * Request shutdown: the MCP drains until every tile is free, stops
     * the LCPs, and exits; all host threads are joined.
     */
    void waitForShutdown();

    /** @name Statistics @{ */
    stat_t threadsSpawned() const { return threadsSpawned_; }
    stat_t syscallCount(tile_id_t tile) const;
    stat_t totalSyscalls() const;
    /** @} */

    /**
     * Snapshot of the MCP's blocking state — futex wait queues, join
     * waiters, busy-tile count — for the telemetry plane. Safe to call
     * from any host thread; copies under mcpStateMutex_, which the MCP
     * takes once per dispatched message.
     */
    obs::telemetry::WaitSetSnapshot waitSets() const;

    /**
     * @name Checkpoint serialization (between runs, MCP stopped)
     * Checkpoints are taken at quiescence, so the futex and join wait
     * queues must be empty (throws SnapshotError otherwise). Restore
     * is staged: loadState() parks the state and the next start()
     * applies it after its own re-initialization, so the restored
     * syscall counters and exit clocks are not clobbered.
     * @{
     */
    void saveState(snapshot::SnapshotWriter& w) const;
    void loadState(snapshot::SnapshotReader& r);
    /** @} */

  private:
    friend class Api; // the API layer sends requests directly

    enum class TileState : std::uint8_t { Free, Busy };

    struct FutexWaiter
    {
        tile_id_t tile;
        std::uint32_t expected;
    };

    void mcpLoop();
    void lcpLoop(proc_id_t proc);
    void appTrampoline(tile_id_t tile, thread_func_t func, void* arg,
                       cycle_t start_clock, bool is_main);

    /** Send a system packet from the MCP to a tile endpoint. */
    void mcpReplyToTile(tile_id_t tile, cycle_t timestamp,
                        std::vector<std::uint8_t> payload);

    /** Send a system packet from the MCP to an LCP endpoint. */
    void mcpSendToLcp(proc_id_t proc, std::vector<std::uint8_t> payload);

    /** @name MCP request handlers @{ */
    void handleSpawn(const SysMsgHeader& hdr, const SpawnBody& body);
    void handleJoin(const SysMsgHeader& hdr, const JoinBody& body);
    void handleThreadExit(const SysMsgHeader& hdr);
    void handleFutexWait(const SysMsgHeader& hdr, const FutexBody& body);
    void handleFutexWake(const SysMsgHeader& hdr, const FutexBody& body);
    void handleFileOp(const SysMsgHeader& hdr,
                      const std::vector<std::uint8_t>& raw);
    void maybeFinishShutdown();
    /** @} */

    Simulator& sim_;

    std::thread mcpThread_;
    std::vector<std::thread> lcpThreads_;

    /** App host threads, created by LCPs; guarded by appThreadsMutex_. */
    lockdep::OrderedMutex appThreadsMutex_{lockdep::LockClass::app_threads};
    std::vector<std::thread> appThreads_;

    // ---- MCP state: written only by the MCP thread, which holds
    // mcpStateMutex_ across each message dispatch so waitSets() can
    // read a consistent snapshot from telemetry host threads. ----
    mutable lockdep::OrderedMutex mcpStateMutex_{
        lockdep::LockClass::mcp_state};
    std::vector<TileState> tileState_;
    std::unordered_map<tile_id_t, cycle_t> exitClock_;
    std::unordered_map<tile_id_t, std::vector<tile_id_t>> joinWaiters_;
    std::unordered_map<addr_t, std::deque<FutexWaiter>> futexQueues_;
    std::unordered_map<std::int32_t, std::FILE*> files_;
    std::int32_t nextFd_ = 3;
    bool shutdownRequested_ = false;
    bool shutdownDone_ = false;
    int busyTiles_ = 0;

    stat_t threadsSpawned_ = 0;
    std::vector<stat_t> syscalls_; ///< per-tile, incremented by MCP only

    /** Restored state parked by loadState() until the next start(). */
    struct PendingRestore
    {
        std::unordered_map<tile_id_t, cycle_t> exitClock;
        stat_t threadsSpawned = 0;
        std::vector<stat_t> syscalls;
        std::int32_t nextFd = 3;
    };
    std::unique_ptr<PendingRestore> pendingRestore_;
};

} // namespace graphite
