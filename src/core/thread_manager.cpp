#include "common/lockdep.h"
#include "core/thread_manager.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/log.h"
#include "common/strfmt.h"
#include "snapshot/snapshot.h"
#include "core/api.h"
#include "core/simulator.h"
#include "obs/profiler.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/trace_event.h"
#include "race/detector.h"

namespace graphite
{

ThreadManager::ThreadManager(Simulator& sim) : sim_(sim)
{
}

ThreadManager::~ThreadManager()
{
    // Normal teardown happens in waitForShutdown(); this is a backstop
    // for error paths so the process does not terminate with detached
    // threads touching freed state.
    if (mcpThread_.joinable())
        mcpThread_.join();
    for (auto& t : lcpThreads_) {
        if (t.joinable())
            t.join();
    }
    lockdep::Guard lock(appThreadsMutex_);
    for (auto& t : appThreads_) {
        if (t.joinable())
            t.join();
    }
}

void
ThreadManager::start()
{
    const ClusterTopology& topo = sim_.topology();
    tileState_.assign(topo.totalTiles(), TileState::Free);
    syscalls_.assign(topo.totalTiles(), 0);

    // Re-entrancy: a second run() on the same Simulator (and a run
    // after checkpoint restore) must not inherit the previous run's
    // shutdown latches or joined host-thread handles.
    shutdownRequested_ = false;
    shutdownDone_ = false;
    lcpThreads_.clear();
    {
        lockdep::Guard lock(appThreadsMutex_);
        appThreads_.clear();
    }

    if (pendingRestore_ != nullptr) {
        exitClock_ = std::move(pendingRestore_->exitClock);
        threadsSpawned_ = pendingRestore_->threadsSpawned;
        syscalls_ = std::move(pendingRestore_->syscalls);
        nextFd_ = pendingRestore_->nextFd;
        pendingRestore_.reset();
    }

    // Reserve tile 0 for the application's main thread before any MCP
    // processing can begin.
    tileState_[0] = TileState::Busy;
    busyTiles_ = 1;

    mcpThread_ = std::thread([this] { mcpLoop(); });
    for (proc_id_t p = 0; p < topo.numProcesses(); ++p)
        lcpThreads_.emplace_back([this, p] { lcpLoop(p); });
}

void
ThreadManager::launchMain(thread_func_t func, void* arg)
{
    // The main thread enters the scheduling rotation before its host
    // thread exists, like any spawned thread (see handleSpawn).
    if (host::HostScheduler* sched = sim_.hostScheduler())
        sched->expectThread(0);
    lockdep::Guard lock(appThreadsMutex_);
    appThreads_.emplace_back([this, func, arg] {
        appTrampoline(0, func, arg, 0, /*is_main=*/true);
    });
}

void
ThreadManager::waitForShutdown()
{
    // The MCP defers the actual shutdown until every tile is free, so
    // this is safe to send while application threads still run.
    SysMsgHeader hdr{SysMsgType::Shutdown, INVALID_THREAD_ID, 0};
    NetPacket pkt;
    pkt.type = PacketType::System;
    pkt.sender = MCP_SENDER;
    pkt.receiver = INVALID_TILE_ID;
    pkt.payload = packSysMsg(hdr);
    endpoint_id_t mcp = sim_.topology().mcpEndpoint();
    sim_.transport().send(mcp, mcp, pkt.serialize());

    if (mcpThread_.joinable())
        mcpThread_.join();
    for (auto& t : lcpThreads_) {
        if (t.joinable())
            t.join();
    }
    lockdep::Guard lock(appThreadsMutex_);
    for (auto& t : appThreads_) {
        if (t.joinable())
            t.join();
    }
}

// --------------------------------------------------------------- app thread

void
ThreadManager::appTrampoline(tile_id_t tile, thread_func_t func,
                             void* arg, cycle_t start_clock, bool is_main)
{
    // Join the host execution pool: announce our clock, then block
    // until the scheduler grants the first slot.
    host::HostScheduler* sched = sim_.hostScheduler();
    if (sched != nullptr) {
        sched->registerThread(tile, &sim_.tile(tile).core());
        sched->start(tile);
    }
    api::detail::bindContext(sim_, tile);
    // New occupant of the tile slot: bump the epoch. The slot's vector
    // clock is inherited — reuse of a freed tile is genuinely ordered
    // through the exit -> MCP -> spawn chain, so stale stack/heap words
    // from the previous occupant never report as races.
    if (race::Detector::armed())
        race::Detector::instance().threadStart(tile);
    Tile& t = sim_.tile(tile);
    CoreModel& core = t.core();
    core.forwardClock(start_clock);
    if (!is_main)
        core.executePseudo(PseudoInstr::Spawn, sim_.spawnCost());
    t.setOccupied(true);
    t.setRunning(true);
    sim_.syncModel().threadStart(core);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::ThreadStart, tile, core.cycle(),
        start_clock);
    cycle_t trace_start = core.cycle();

    func(arg);

    sim_.syncModel().threadExit(core);
    t.setRunning(false);
    t.setOccupied(false);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::ThreadExit, tile, core.cycle(),
        core.cycle());
    obs::TraceSink::complete(static_cast<std::uint32_t>(tile),
                             is_main ? "thread.main" : "thread",
                             trace_start, core.cycle() - trace_start);

    // Tell the MCP this tile is free; join waiters observe our clock.
    SysMsgHeader hdr{SysMsgType::ThreadExit, tile, core.cycle()};
    NetPacket pkt;
    pkt.type = PacketType::System;
    pkt.sender = tile;
    pkt.receiver = INVALID_TILE_ID;
    pkt.time = core.cycle();
    pkt.payload = packSysMsg(hdr);
    sim_.transport().send(sim_.topology().tileEndpoint(tile),
                          sim_.topology().mcpEndpoint(),
                          pkt.serialize());
    if (sched != nullptr) {
        // Deterministic mode: hold the slot until the MCP has freed
        // the tile, so exit effects land at a fixed point in the
        // serialized schedule; then leave the rotation.
        sched->requestFence(tile);
        sched->finishThread(tile);
    }
    api::detail::unbindContext();
}

// --------------------------------------------------------------------- LCP

void
ThreadManager::lcpLoop(proc_id_t proc)
{
    endpoint_id_t ep = sim_.topology().lcpEndpoint(proc);
    while (true) {
        TransportBuffer buf = sim_.transport().recv(ep);
        if (buf.src < 0)
            return; // transport shut down
        NetPacket pkt = NetPacket::deserialize(buf.data);
        SysMsgHeader hdr = peekHeader(pkt.payload);
        switch (hdr.type) {
          case SysMsgType::SpawnToLcp: {
            auto body = unpackBody<SpawnBody>(pkt.payload);
            auto func = reinterpret_cast<thread_func_t>(body.func);
            auto* arg = reinterpret_cast<void*>(body.arg);
            tile_id_t tile = body.tile;
            cycle_t clock = hdr.timestamp;
            lockdep::Guard lock(appThreadsMutex_);
            appThreads_.emplace_back([this, tile, func, arg, clock] {
                appTrampoline(tile, func, arg, clock, /*is_main=*/false);
            });
            break;
          }
          case SysMsgType::LcpShutdown:
            return;
          default:
            panic("LCP {}: unexpected message type {}", proc,
                  static_cast<int>(hdr.type));
        }
    }
}

// --------------------------------------------------------------------- MCP

void
ThreadManager::mcpReplyToTile(tile_id_t tile, cycle_t timestamp,
                              std::vector<std::uint8_t> payload)
{
    NetPacket pkt;
    pkt.type = PacketType::System;
    pkt.sender = MCP_SENDER;
    pkt.receiver = tile;
    pkt.time = timestamp;
    pkt.payload = std::move(payload);
    sim_.transport().send(sim_.topology().mcpEndpoint(),
                          sim_.topology().tileEndpoint(tile),
                          pkt.serialize());
}

void
ThreadManager::mcpSendToLcp(proc_id_t proc,
                            std::vector<std::uint8_t> payload)
{
    NetPacket pkt;
    pkt.type = PacketType::System;
    pkt.sender = MCP_SENDER;
    pkt.receiver = INVALID_TILE_ID;
    pkt.payload = std::move(payload);
    sim_.transport().send(sim_.topology().mcpEndpoint(),
                          sim_.topology().lcpEndpoint(proc),
                          pkt.serialize());
}

void
ThreadManager::mcpLoop()
{
    endpoint_id_t ep = sim_.topology().mcpEndpoint();
    while (!shutdownDone_) {
        TransportBuffer buf;
        {
            GRAPHITE_PROFILE_SCOPE("mcp.recv_wait");
            buf = sim_.transport().recv(ep);
        }
        if (buf.src < 0)
            return;
        GRAPHITE_PROFILE_SCOPE("mcp.dispatch");
        // One uncontended lock per dispatched message buys the
        // telemetry plane (waitSets()) a consistent read of the futex
        // queues, join waiters, and tile table.
        lockdep::Guard state_lock(mcpStateMutex_);
        NetPacket pkt = NetPacket::deserialize(buf.data);
        SysMsgHeader hdr = peekHeader(pkt.payload);
        switch (hdr.type) {
          case SysMsgType::SpawnRequest:
            handleSpawn(hdr, unpackBody<SpawnBody>(pkt.payload));
            break;
          case SysMsgType::JoinRequest:
            handleJoin(hdr, unpackBody<JoinBody>(pkt.payload));
            break;
          case SysMsgType::ThreadExit:
            handleThreadExit(hdr);
            break;
          case SysMsgType::FutexWait:
            ++syscalls_[hdr.srcTile];
            handleFutexWait(hdr, unpackBody<FutexBody>(pkt.payload));
            break;
          case SysMsgType::FutexWake:
            ++syscalls_[hdr.srcTile];
            handleFutexWake(hdr, unpackBody<FutexBody>(pkt.payload));
            break;
          case SysMsgType::FileOp:
            ++syscalls_[hdr.srcTile];
            handleFileOp(hdr, pkt.payload);
            break;
          case SysMsgType::Shutdown:
            shutdownRequested_ = true;
            maybeFinishShutdown();
            break;
          default:
            panic("MCP: unexpected message type {}",
                  static_cast<int>(hdr.type));
        }
        // Deterministic-mode request fence: the sender holds its
        // execution slot until its message is fully dispatched, which
        // serializes MCP side effects into the schedule. Shutdown has
        // no requesting tile.
        if (hdr.srcTile >= 0) {
            if (host::HostScheduler* sched = sim_.hostScheduler())
                sched->requestDispatched(hdr.srcTile);
        }
    }
}

void
ThreadManager::handleSpawn(const SysMsgHeader& hdr, const SpawnBody& body)
{
    // Pick the lowest-numbered free tile; striping of tiles across
    // processes makes low ids spread over processes (§3.5).
    tile_id_t chosen = INVALID_TILE_ID;
    for (tile_id_t t = 0;
         t < static_cast<tile_id_t>(tileState_.size()); ++t) {
        if (tileState_[t] == TileState::Free) {
            chosen = t;
            break;
        }
    }

    SpawnBody reply = body;
    if (chosen == INVALID_TILE_ID) {
        // "The maximum number of threads at any time may not exceed the
        // total number of cores" — a spawn beyond that is a user error.
        reply.error = 1;
        reply.tile = INVALID_TILE_ID;
    } else {
        tileState_[chosen] = TileState::Busy;
        ++busyTiles_;
        ++threadsSpawned_;
        exitClock_.erase(chosen);
        // Parent -> child ordering; applied before the LCP can start
        // the child, while the parent is blocked on SpawnReply.
        if (race::Detector::armed())
            race::Detector::instance().edge(hdr.srcTile, chosen);
        reply.error = 0;
        reply.tile = chosen;
        // Commit the tile to the rotation now: scheduling order must
        // not depend on how fast the LCP creates the host thread.
        if (host::HostScheduler* sched = sim_.hostScheduler())
            sched->expectThread(chosen);
        obs::telemetry::FlightRecorder::record(
            obs::telemetry::FrEvent::Spawn, hdr.srcTile, hdr.timestamp,
            static_cast<std::uint64_t>(chosen),
            static_cast<std::uint64_t>(hdr.srcTile));
        obs::TraceSink::instant(
            static_cast<std::uint32_t>(sim_.topology().totalTiles()),
            "mcp.spawn", hdr.timestamp, "tile", chosen);
        debugc("core", "spawn: tile {} requested, tile {} chosen",
               hdr.srcTile, chosen);

        SysMsgHeader fwd{SysMsgType::SpawnToLcp, hdr.srcTile,
                         hdr.timestamp};
        SpawnBody fwd_body = body;
        fwd_body.tile = chosen;
        mcpSendToLcp(sim_.topology().processForTile(chosen),
                     packSysMsg(fwd, fwd_body));
    }

    SysMsgHeader rh{SysMsgType::SpawnReply, hdr.srcTile, hdr.timestamp};
    mcpReplyToTile(hdr.srcTile, hdr.timestamp, packSysMsg(rh, reply));
}

void
ThreadManager::handleJoin(const SysMsgHeader& hdr, const JoinBody& body)
{
    tile_id_t target = body.tile;
    GRAPHITE_ASSERT(target >= 0 &&
                    target < static_cast<tile_id_t>(tileState_.size()));
    auto it = exitClock_.find(target);
    if (tileState_[target] == TileState::Free && it != exitClock_.end()) {
        // Exited target -> joiner ordering (immediate-join path).
        if (race::Detector::armed())
            race::Detector::instance().edge(target, hdr.srcTile);
        JoinBody reply{target, it->second};
        SysMsgHeader rh{SysMsgType::JoinReply, hdr.srcTile, it->second};
        mcpReplyToTile(hdr.srcTile, it->second, packSysMsg(rh, reply));
    } else {
        joinWaiters_[target].push_back(hdr.srcTile);
    }
}

void
ThreadManager::handleThreadExit(const SysMsgHeader& hdr)
{
    tile_id_t tile = hdr.srcTile;
    GRAPHITE_ASSERT(tile >= 0 &&
                    tile < static_cast<tile_id_t>(tileState_.size()));
    GRAPHITE_ASSERT(tileState_[tile] == TileState::Busy);
    tileState_[tile] = TileState::Free;
    --busyTiles_;
    exitClock_[tile] = hdr.timestamp;

    auto wit = joinWaiters_.find(tile);
    if (wit != joinWaiters_.end()) {
        for (tile_id_t waiter : wit->second) {
            // Exited thread -> each queued joiner.
            if (race::Detector::armed())
                race::Detector::instance().edge(tile, waiter);
            // Deterministic wake: the joiner re-enters the rotation at
            // this dispatch, not when its host thread gets CPU time.
            if (host::HostScheduler* sched = sim_.hostScheduler())
                sched->notifyUnblocked(
                    waiter, host::HostScheduler::BlockKind::Sys);
            JoinBody reply{tile, hdr.timestamp};
            SysMsgHeader rh{SysMsgType::JoinReply, waiter,
                            hdr.timestamp};
            mcpReplyToTile(waiter, hdr.timestamp, packSysMsg(rh, reply));
        }
        joinWaiters_.erase(wit);
    }
    maybeFinishShutdown();
}

void
ThreadManager::handleFutexWait(const SysMsgHeader& hdr,
                               const FutexBody& body)
{
    std::uint32_t current = 0;
    sim_.memory().readCoherent(body.addr, &current, sizeof(current));
    if (current != body.value) {
        FutexBody reply = body;
        reply.result = -1; // EWOULDBLOCK
        SysMsgHeader rh{SysMsgType::FutexWaitReply, hdr.srcTile,
                        hdr.timestamp};
        mcpReplyToTile(hdr.srcTile, hdr.timestamp, packSysMsg(rh, reply));
        return;
    }
    futexQueues_[body.addr].push_back(
        FutexWaiter{hdr.srcTile, body.value});
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::FutexWait, hdr.srcTile, hdr.timestamp,
        body.addr, body.value);
}

void
ThreadManager::handleFutexWake(const SysMsgHeader& hdr,
                               const FutexBody& body)
{
    auto qit = futexQueues_.find(body.addr);
    std::uint32_t woken = 0;
    std::uint32_t race_edges = 0;
    if (qit != futexQueues_.end()) {
        auto& queue = qit->second;
        while (woken < body.count && !queue.empty()) {
            FutexWaiter w = queue.front();
            queue.pop_front();
            ++woken;
            // The waker -> waiter happens-before edge forms ONLY here,
            // where the wake actually transfers (a queued waiter is
            // consumed). A futexWait that returned -1 on value mismatch
            // was never queued and gets no edge — futexWake alone
            // orders nothing it did not wake. Both endpoints are
            // blocked on MCP replies, so their clocks are quiescent.
            if (race::Detector::armed()) {
                race::Detector::instance().edge(hdr.srcTile, w.tile);
                ++race_edges;
            }
            if (host::HostScheduler* sched = sim_.hostScheduler())
                sched->notifyUnblocked(
                    w.tile, host::HostScheduler::BlockKind::Sys);
            // The wakeup "occurs" at the waker's simulated time; the
            // waiter forwards its clock to this timestamp (§3.6.1).
            FutexBody reply{};
            reply.addr = body.addr;
            reply.result = 0;
            SysMsgHeader rh{SysMsgType::FutexWaitReply, w.tile,
                            hdr.timestamp};
            mcpReplyToTile(w.tile, hdr.timestamp, packSysMsg(rh, reply));
        }
        if (queue.empty())
            futexQueues_.erase(qit);
    }
    // Transfer-only invariant: one edge per consumed waiter, never for
    // unconsumed wake count (see tests/test_race.cpp regressions).
    GRAPHITE_ASSERT(!race::Detector::armed() || race_edges == woken);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::FutexWake, hdr.srcTile, hdr.timestamp,
        body.addr, woken);
    FutexBody reply = body;
    reply.count = woken;
    reply.result = 0;
    SysMsgHeader rh{SysMsgType::FutexWakeReply, hdr.srcTile,
                    hdr.timestamp};
    mcpReplyToTile(hdr.srcTile, hdr.timestamp, packSysMsg(rh, reply));
}

void
ThreadManager::handleFileOp(const SysMsgHeader& hdr,
                            const std::vector<std::uint8_t>& raw)
{
    auto body = unpackBody<FileOpBody>(raw);
    auto extra = unpackExtra<FileOpBody>(raw);
    FileOpBody reply = body;
    std::vector<std::uint8_t> reply_extra;

    switch (body.op) {
      case FileOpBody::Open: {
        std::string path(extra.begin(), extra.end());
        const char* mode = body.flags == 1 ? "wb" : "rb";
        std::FILE* f = std::fopen(path.c_str(), mode);
        if (f == nullptr) {
            reply.result = -1;
        } else {
            std::int32_t fd = nextFd_++;
            files_[fd] = f;
            reply.result = fd;
        }
        break;
      }
      case FileOpBody::Close: {
        auto it = files_.find(body.fd);
        if (it == files_.end()) {
            reply.result = -1;
        } else {
            std::fclose(it->second);
            files_.erase(it);
            reply.result = 0;
        }
        break;
      }
      case FileOpBody::Read: {
        auto it = files_.find(body.fd);
        if (it == files_.end()) {
            reply.result = -1;
            break;
        }
        std::vector<std::uint8_t> data(body.length);
        size_t n = std::fread(data.data(), 1, data.size(), it->second);
        // Kernel-style copy into the target buffer.
        if (n > 0)
            sim_.memory().writeCoherent(body.bufAddr, data.data(), n);
        reply.result = static_cast<std::int64_t>(n);
        break;
      }
      case FileOpBody::Write: {
        auto it = files_.find(body.fd);
        if (it == files_.end()) {
            reply.result = -1;
            break;
        }
        size_t n =
            std::fwrite(extra.data(), 1, extra.size(), it->second);
        reply.result = static_cast<std::int64_t>(n);
        break;
      }
      case FileOpBody::Seek: {
        auto it = files_.find(body.fd);
        if (it == files_.end()) {
            reply.result = -1;
            break;
        }
        int whence = static_cast<int>(body.flags);
        reply.result =
            std::fseek(it->second, static_cast<long>(body.offset),
                       whence) == 0
                ? static_cast<std::int64_t>(std::ftell(it->second))
                : -1;
        break;
      }
      default:
        panic("MCP: bad file op {}", body.op);
    }

    SysMsgHeader rh{SysMsgType::FileOpReply, hdr.srcTile, hdr.timestamp};
    mcpReplyToTile(hdr.srcTile, hdr.timestamp,
                   packSysMsg(rh, reply, reply_extra.data(),
                              reply_extra.size()));
}

void
ThreadManager::maybeFinishShutdown()
{
    if (!shutdownRequested_ || busyTiles_ != 0 || shutdownDone_)
        return;
    shutdownDone_ = true;
    for (auto& [fd, f] : files_)
        std::fclose(f);
    files_.clear();
    SysMsgHeader hdr{SysMsgType::LcpShutdown, INVALID_THREAD_ID, 0};
    for (proc_id_t p = 0; p < sim_.topology().numProcesses(); ++p)
        mcpSendToLcp(p, packSysMsg(hdr));
}

stat_t
ThreadManager::syscallCount(tile_id_t tile) const
{
    GRAPHITE_ASSERT(tile >= 0 &&
                    tile < static_cast<tile_id_t>(syscalls_.size()));
    return syscalls_[tile];
}

stat_t
ThreadManager::totalSyscalls() const
{
    stat_t total = 0;
    for (stat_t s : syscalls_)
        total += s;
    return total;
}

void
ThreadManager::saveState(snapshot::SnapshotWriter& w) const
{
    lockdep::Guard lock(mcpStateMutex_);
    if (!futexQueues_.empty() || !joinWaiters_.empty())
        throw snapshot::SnapshotError(
            "snapshot: cannot checkpoint with blocked threads "
            "(futex/join wait queues are not empty)");
    // A restore staged by loadState() is the authoritative state until
    // the next start() applies it — re-saving right after a restore
    // must reproduce the restored snapshot byte for byte.
    const PendingRestore* staged = pendingRestore_.get();
    w.u64(staged != nullptr ? staged->threadsSpawned : threadsSpawned_);
    w.i64(staged != nullptr ? staged->nextFd : nextFd_);
    const std::vector<stat_t>& sys =
        staged != nullptr ? staged->syscalls : syscalls_;
    w.u64(static_cast<std::uint64_t>(sys.size()));
    for (stat_t s : sys)
        w.u64(s);
    const std::unordered_map<tile_id_t, cycle_t>& exit_src =
        staged != nullptr ? staged->exitClock : exitClock_;
    std::map<tile_id_t, cycle_t> exits(exit_src.begin(),
                                       exit_src.end());
    w.u64(static_cast<std::uint64_t>(exits.size()));
    for (const auto& [tile, clock] : exits) {
        w.i64(tile);
        w.u64(clock);
    }
}

void
ThreadManager::loadState(snapshot::SnapshotReader& r)
{
    auto pending = std::make_unique<PendingRestore>();
    pending->threadsSpawned = r.u64();
    pending->nextFd = static_cast<std::int32_t>(r.i64());
    std::uint64_t tiles = r.u64();
    if (tiles !=
        static_cast<std::uint64_t>(sim_.topology().totalTiles()))
        throw snapshot::SnapshotError(
            strfmt("snapshot: syscall table tile count mismatch "
                   "(snapshot {}, configured {})",
                   tiles, sim_.topology().totalTiles()));
    pending->syscalls.resize(tiles);
    for (stat_t& s : pending->syscalls)
        s = r.u64();
    std::uint64_t exits = r.u64();
    for (std::uint64_t i = 0; i < exits; ++i) {
        auto tile = static_cast<tile_id_t>(r.i64());
        cycle_t clock = r.u64();
        pending->exitClock[tile] = clock;
    }
    pendingRestore_ = std::move(pending);
}

obs::telemetry::WaitSetSnapshot
ThreadManager::waitSets() const
{
    obs::telemetry::WaitSetSnapshot out;
    lockdep::Guard lock(mcpStateMutex_);
    out.busyTiles = busyTiles_;
    out.shutdownRequested = shutdownRequested_;
    out.futexes.reserve(futexQueues_.size());
    for (const auto& [addr, queue] : futexQueues_) {
        obs::telemetry::WaitSetSnapshot::FutexQueue q;
        q.addr = addr;
        q.waiters.reserve(queue.size());
        for (const FutexWaiter& w : queue)
            q.waiters.push_back(w.tile);
        out.futexes.push_back(std::move(q));
    }
    std::sort(out.futexes.begin(), out.futexes.end(),
              [](const auto& a, const auto& b) { return a.addr < b.addr; });
    out.joins.reserve(joinWaiters_.size());
    for (const auto& [target, waiters] : joinWaiters_) {
        obs::telemetry::WaitSetSnapshot::JoinQueue q;
        q.target = target;
        q.waiters = waiters;
        out.joins.push_back(std::move(q));
    }
    std::sort(out.joins.begin(), out.joins.end(),
              [](const auto& a, const auto& b) {
                  return a.target < b.target;
              });
    return out;
}

} // namespace graphite
