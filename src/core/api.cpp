#include "core/api.h"

#include <cstring>
#include <limits>

#include "common/log.h"
#include "core/simulator.h"
#include "obs/metrics_sampler.h"
#include "obs/telemetry/flight_recorder.h"
#include "obs/trace_event.h"
#include "race/detector.h"

namespace graphite
{
namespace api
{

namespace
{

/** Per-host-thread binding to a tile of the current simulation. */
struct Context
{
    Simulator* sim = nullptr;
    tile_id_t tile = INVALID_TILE_ID;
    CoreModel* core = nullptr;
    Network* net = nullptr;
    host::HostScheduler* sched = nullptr; ///< null = scheduler off
    std::uint64_t sinceCheck = 0;
};

thread_local Context t_ctx;

Context&
ctx()
{
    GRAPHITE_ASSERT(t_ctx.sim != nullptr);
    return t_ctx;
}

/**
 * Periodic hook: after every modeled instruction batch, give the sync
 * model a chance to limit skew and feed the skew tracker.
 */
void
tick(std::uint64_t instructions)
{
    Context& c = ctx();
    c.sinceCheck += instructions;
    cycle_t interval = c.sim->syncCheckInterval();
    if (c.sinceCheck < interval)
        return;
    c.sinceCheck = 0;
    // Cycle-threshold ROI switch: leave warmup once this tile's clock
    // passes snapshot/ff_detail_at (checked here so no workload
    // cooperation is needed).
    if (c.sim->fastForwarding() && c.sim->fastForwardDetailAt() > 0 &&
        c.core->cycle() >= c.sim->fastForwardDetailAt())
        c.sim->endFastForward();
    c.sim->syncModel().periodicSync(*c.core);
    // Cooperative quantum boundary: hand the execution slot to the
    // next runnable thread (and enforce the skew gate) after at most
    // host/quantum_cycles of simulated progress.
    if (c.sched != nullptr)
        c.sched->quantumCheck(c.tile);
    if (SkewTracker* skew = c.sim->skewTracker())
        skew->maybeSnapshot();
    if (obs::MetricsSampler::globalEnabled())
        obs::MetricsSampler::instance().maybeSample();
}

/** Charge the syscall cost and send a request packet to the MCP. */
void
sendSysRequest(std::vector<std::uint8_t> payload)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    NetPacket pkt;
    pkt.type = PacketType::System;
    pkt.sender = c.tile;
    pkt.receiver = INVALID_TILE_ID;
    pkt.time = c.core->cycle();
    pkt.payload = std::move(payload);
    // Model the request on the system network (magic by default, so no
    // latency — but the traffic is accounted; the MCP resides in
    // process 0, co-located with tile 0).
    c.sim->fabric().model(PacketType::System, c.tile, 0,
                          pkt.modeledBytes(), pkt.time);
    c.sim->transport().send(c.sim->topology().tileEndpoint(c.tile),
                            c.sim->topology().mcpEndpoint(),
                            pkt.serialize());
    // Deterministic mode: hold the slot until the MCP dispatched the
    // request, so its side effects land at a fixed schedule point.
    if (c.sched != nullptr)
        c.sched->requestFence(c.tile);
}

/**
 * Block for the MCP's reply. The thread deregisters from the sync model
 * while blocked (a barrier must not wait on a sleeping thread), and the
 * local clock forwards to the reply's timestamp — the lax rule: "the
 * clock of the tile is forwarded to the time that the event occurred."
 */
NetPacket
recvSysReply()
{
    Context& c = ctx();
    NetPacket pkt;
    bool have = false;
    // Under the scheduler, an already-delivered reply (spawn, wake,
    // file op, failed wait) is consumed without ever giving up the
    // execution slot or perturbing the sync model.
    if (c.sched != nullptr)
        have = c.net->tryRecv(PacketType::System, pkt);
    if (!have) {
        c.sim->syncModel().threadBlocked(*c.core);
        c.sim->tile(c.tile).setRunning(false);
        if (c.sched != nullptr)
            c.sched->beginBlock(c.tile,
                                host::HostScheduler::BlockKind::Sys);
        pkt = c.net->recv(PacketType::System);
        if (c.sched != nullptr)
            c.sched->endBlock(c.tile);
        c.sim->tile(c.tile).setRunning(true);
        c.sim->syncModel().threadUnblocked(*c.core);
    }
    GRAPHITE_ASSERT(pkt.sender == MCP_SENDER);
    cycle_t now = c.core->cycle();
    if (pkt.time > now) {
        obs::TraceSink::complete(static_cast<std::uint32_t>(c.tile),
                                 "sys.wait", now, pkt.time - now);
        c.core->executePseudo(PseudoInstr::SyncWait, pkt.time - now);
    }
    return pkt;
}

SysMsgHeader
makeHeader(SysMsgType type)
{
    Context& c = ctx();
    return SysMsgHeader{type, c.tile, c.core->cycle()};
}

/**
 * Race-detector view of an atomic RMW: acquire from the address's sync
 * clock and, when @p release, publish to it. A failed CAS passes
 * release=false — it observes but publishes nothing.
 */
void
atomicRaceHook(addr_t addr, bool release)
{
    if (!race::Detector::armed() || race::Detector::suppressed())
        return;
    race::Detector::instance().onAtomic(t_ctx.tile, addr, release);
}

} // namespace

namespace detail
{

void
bindContext(Simulator& sim, tile_id_t tile)
{
    GRAPHITE_ASSERT(t_ctx.sim == nullptr);
    t_ctx.sim = &sim;
    t_ctx.tile = tile;
    t_ctx.core = &sim.tile(tile).core();
    t_ctx.net = &sim.tile(tile).network();
    t_ctx.sched = sim.hostScheduler();
    t_ctx.sinceCheck = 0;
}

void
unbindContext()
{
    t_ctx = Context{};
}

bool
bound()
{
    return t_ctx.sim != nullptr;
}

} // namespace detail

// ------------------------------------------------------------ identity/time

tile_id_t
tileId()
{
    return ctx().tile;
}

tile_id_t
numTiles()
{
    return ctx().sim->totalTiles();
}

cycle_t
cycle()
{
    return ctx().core->cycle();
}

// -------------------------------------------------------------------- ROI

void
roiBegin()
{
    ctx().sim->endFastForward();
}

void
roiEnd()
{
    ctx().sim->beginFastForward();
}

// ----------------------------------------------------------- dynamic memory

addr_t
malloc(std::uint64_t size)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    addr_t addr = c.sim->memory().manager().allocate(size);
    // Reused storage carries no happens-before history: a block freed
    // by one thread and reallocated to another must not report the old
    // owner's accesses as racing.
    if (race::Detector::armed())
        race::Detector::instance().clearRange(addr, size);
    return addr;
}

void
free(addr_t addr)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    c.sim->memory().manager().deallocate(addr);
}

addr_t
brk(addr_t new_brk)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    return c.sim->memory().manager().brk(new_brk);
}

addr_t
mmap(std::uint64_t length)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    addr_t addr = c.sim->memory().manager().mmap(length);
    if (race::Detector::armed())
        race::Detector::instance().clearRange(addr, length);
    return addr;
}

void
munmap(addr_t addr, std::uint64_t length)
{
    Context& c = ctx();
    c.core->addLatency(c.sim->syscallCost());
    c.sim->memory().manager().munmap(addr, length);
}

// --------------------------------------------------------- memory references

void
readMem(addr_t addr, void* out, size_t size)
{
    Context& c = ctx();
    AccessResult r = c.sim->memory().access(
        c.tile, MemAccessType::Read, addr, out, size, c.core->cycle());
    c.core->executeLoad(r.latency);
    tick(1);
}

void
writeMem(addr_t addr, const void* in, size_t size)
{
    Context& c = ctx();
    AccessResult r = c.sim->memory().access(
        c.tile, MemAccessType::Write, addr, const_cast<void*>(in), size,
        c.core->cycle());
    c.core->executeStore(r.latency);
    tick(1);
}

// ------------------------------------------------------------------ atomics

namespace
{

std::uint64_t
rmw(addr_t addr, size_t size,
    const std::function<std::uint64_t(std::uint64_t)>& op)
{
    Context& c = ctx();
    auto r = c.sim->memory().atomicRmw(c.tile, addr, size, op,
                                       c.core->cycle());
    // An atomic is a load + ALU op + store retiring as one unit; the
    // core blocks on it like a load.
    c.core->executeLoad(r.latency);
    tick(1);
    return r.oldValue;
}

} // namespace

std::uint32_t
atomicCas32(addr_t addr, std::uint32_t expected, std::uint32_t desired)
{
    auto old = static_cast<std::uint32_t>(
        rmw(addr, 4, [&](std::uint64_t v) {
            return v == expected ? desired
                                 : static_cast<std::uint32_t>(v);
        }));
    // A failed CAS is acquire-only: it reads the current value but
    // publishes nothing, so it must not form a release edge.
    atomicRaceHook(addr, old == expected);
    return old;
}

std::uint32_t
atomicExchange32(addr_t addr, std::uint32_t value)
{
    auto old = static_cast<std::uint32_t>(
        rmw(addr, 4, [&](std::uint64_t) { return value; }));
    atomicRaceHook(addr, true);
    return old;
}

std::uint32_t
atomicAdd32(addr_t addr, std::int32_t delta)
{
    auto old = static_cast<std::uint32_t>(
        rmw(addr, 4, [&](std::uint64_t v) {
            return static_cast<std::uint32_t>(v) +
                   static_cast<std::uint32_t>(delta);
        }));
    atomicRaceHook(addr, true);
    return old;
}

std::uint64_t
atomicAdd64(addr_t addr, std::int64_t delta)
{
    std::uint64_t old = rmw(addr, 8, [&](std::uint64_t v) {
        return v + static_cast<std::uint64_t>(delta);
    });
    atomicRaceHook(addr, true);
    return old;
}

void
annotateSite(const char* site)
{
    if (race::Detector::armed())
        race::Detector::instance().setSite(site);
}

// ------------------------------------------------------- instruction events

void
exec(InstrClass c, std::uint64_t count)
{
    ctx().core->executeInstructions(c, count);
    tick(count);
}

void
branch(addr_t site, bool taken)
{
    ctx().core->executeBranch(site, taken);
    tick(1);
}

// -------------------------------------------------------------------- futex

int
futexWait(addr_t addr, std::uint32_t expected)
{
    FutexBody body{};
    body.addr = addr;
    body.value = expected;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FutexWait), body));
    NetPacket reply = recvSysReply();
    SysMsgHeader hdr = peekHeader(reply.payload);
    GRAPHITE_ASSERT(hdr.type == SysMsgType::FutexWaitReply);
    return unpackBody<FutexBody>(reply.payload).result;
}

std::uint32_t
futexWake(addr_t addr, std::uint32_t count)
{
    FutexBody body{};
    body.addr = addr;
    body.count = count;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FutexWake), body));
    NetPacket reply = recvSysReply();
    SysMsgHeader hdr = peekHeader(reply.payload);
    GRAPHITE_ASSERT(hdr.type == SysMsgType::FutexWakeReply);
    return unpackBody<FutexBody>(reply.payload).count;
}

// ---------------------------------------------------------------- threading

tile_id_t
threadSpawn(thread_func_t func, void* arg)
{
    SpawnBody body{};
    body.func = reinterpret_cast<std::uint64_t>(func);
    body.arg = reinterpret_cast<std::uint64_t>(arg);
    sendSysRequest(
        packSysMsg(makeHeader(SysMsgType::SpawnRequest), body));
    NetPacket reply = recvSysReply();
    SysMsgHeader hdr = peekHeader(reply.payload);
    GRAPHITE_ASSERT(hdr.type == SysMsgType::SpawnReply);
    auto rbody = unpackBody<SpawnBody>(reply.payload);
    if (rbody.error != 0)
        fatal("threadSpawn: no free tile (threads may not exceed the "
              "number of target tiles)");
    return rbody.tile;
}

void
threadJoin(tile_id_t tile)
{
    JoinBody body{};
    body.tile = tile;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::JoinRequest), body));
    NetPacket reply = recvSysReply();
    SysMsgHeader hdr = peekHeader(reply.payload);
    GRAPHITE_ASSERT(hdr.type == SysMsgType::JoinReply);
}

// ---------------------------------------------------------------- messaging

void
msgSend(tile_id_t dst, const void* data, size_t len)
{
    Context& c = ctx();
    GRAPHITE_ASSERT(dst >= 0 && dst < c.sim->totalTiles());
    std::vector<std::uint8_t> payload(len);
    std::memcpy(payload.data(), data, len);
    // Push the sender's clock before the packet becomes receivable; the
    // per-(sender,receiver) channel is FIFO like the transport.
    if (race::Detector::armed())
        race::Detector::instance().msgSendEdge(c.tile, dst);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::MsgSend, c.tile, c.core->cycle(),
        static_cast<std::uint64_t>(dst), len);
    c.net->send(PacketType::App, dst, std::move(payload),
                c.core->cycle());
    // Deterministic wake of a receiver blocked in msgRecv (no-op in
    // free_running mode and when the receiver is not App-blocked).
    if (c.sched != nullptr)
        c.sched->notifyUnblocked(dst,
                                 host::HostScheduler::BlockKind::App);
    // The send itself occupies the core briefly.
    c.core->executeInstructions(InstrClass::IntAlu, 1);
    tick(1);
}

Message
msgRecv()
{
    Context& c = ctx();
    NetPacket pkt;
    bool have = false;
    if (c.sched != nullptr)
        have = c.net->tryRecv(PacketType::App, pkt);
    if (!have) {
        c.sim->syncModel().threadBlocked(*c.core);
        c.sim->tile(c.tile).setRunning(false);
        if (c.sched != nullptr)
            c.sched->beginBlock(c.tile,
                                host::HostScheduler::BlockKind::App);
        pkt = c.net->recv(PacketType::App);
        if (c.sched != nullptr)
            c.sched->endBlock(c.tile);
        c.sim->tile(c.tile).setRunning(true);
        c.sim->syncModel().threadUnblocked(*c.core);
    }
    if (race::Detector::armed())
        race::Detector::instance().msgRecvEdge(pkt.sender, c.tile);
    obs::telemetry::FlightRecorder::record(
        obs::telemetry::FrEvent::MsgRecv, c.tile, c.core->cycle(),
        static_cast<std::uint64_t>(pkt.sender), pkt.payload.size());

    // Receiving a message is a true synchronization event: forward the
    // clock to the packet's arrival time, then consume the "message
    // receive pseudo-instruction" (§3.1).
    cycle_t now = c.core->cycle();
    if (pkt.time > now) {
        obs::TraceSink::complete(static_cast<std::uint32_t>(c.tile),
                                 "msg.wait", now, pkt.time - now);
        c.core->executePseudo(PseudoInstr::SyncWait, pkt.time - now);
    }
    c.core->executePseudo(PseudoInstr::MessageReceive, 1);
    tick(1);

    Message msg;
    msg.sender = pkt.sender;
    msg.data = std::move(pkt.payload);
    return msg;
}

// ------------------------------------------------------------------ file IO

int
fileOpen(const char* path, int flags)
{
    FileOpBody body{};
    body.op = FileOpBody::Open;
    body.flags = static_cast<std::uint32_t>(flags);
    size_t len = std::strlen(path);
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FileOp), body, path,
                              len));
    NetPacket reply = recvSysReply();
    return static_cast<int>(
        unpackBody<FileOpBody>(reply.payload).result);
}

std::int64_t
fileRead(int fd, addr_t buf, std::uint64_t len)
{
    FileOpBody body{};
    body.op = FileOpBody::Read;
    body.fd = fd;
    body.length = len;
    body.bufAddr = buf;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FileOp), body));
    NetPacket reply = recvSysReply();
    return unpackBody<FileOpBody>(reply.payload).result;
}

std::int64_t
fileWrite(int fd, addr_t buf, std::uint64_t len)
{
    Context& c = ctx();
    // Kernel copy of the target buffer travels with the request.
    std::vector<std::uint8_t> data(len);
    c.sim->memory().readCoherent(buf, data.data(), len);
    FileOpBody body{};
    body.op = FileOpBody::Write;
    body.fd = fd;
    body.length = len;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FileOp), body,
                              data.data(), data.size()));
    NetPacket reply = recvSysReply();
    return unpackBody<FileOpBody>(reply.payload).result;
}

std::int64_t
fileSeek(int fd, std::int64_t offset, int whence)
{
    FileOpBody body{};
    body.op = FileOpBody::Seek;
    body.fd = fd;
    body.offset = offset;
    body.flags = static_cast<std::uint32_t>(whence);
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FileOp), body));
    NetPacket reply = recvSysReply();
    return unpackBody<FileOpBody>(reply.payload).result;
}

int
fileClose(int fd)
{
    FileOpBody body{};
    body.op = FileOpBody::Close;
    body.fd = fd;
    sendSysRequest(packSysMsg(makeHeader(SysMsgType::FileOp), body));
    NetPacket reply = recvSysReply();
    return static_cast<int>(
        unpackBody<FileOpBody>(reply.payload).result);
}

// --------------------------------------------------------- sync primitives
//
// The race detector treats this library the way TSan treats pthreads:
// the implementation's internal accesses and atomics are masked with
// InternalScope (a happens-before analysis of the raw futex spin loops
// would flag benign patterns such as the barrier's plain count reset),
// and each primitive instead contributes one lock-level edge —
// acquireAddr after a lock is obtained, releaseAddr before it is
// published free, barrierArrive/Leave around the generation. Condvars
// need no extra edges: the protected data is ordered by the mutex, and
// the futexWake -> futexWait transfer edge is applied at the MCP.

void
mutexInit(addr_t m)
{
    race::Detector::InternalScope guard;
    write<std::uint32_t>(m, 0);
}

void
mutexLock(addr_t m)
{
    {
        race::Detector::InternalScope guard;
        // glibc-style futex lock: 0 free, 1 locked, 2 contended.
        std::uint32_t c = atomicCas32(m, 0, 1);
        if (c != 0) {
            do {
                if (c == 2 || atomicCas32(m, 1, 2) != 0)
                    futexWait(m, 2);
            } while ((c = atomicCas32(m, 0, 2)) != 0);
        }
    }
    if (race::Detector::armed())
        race::Detector::instance().acquireAddr(ctx().tile, m);
}

void
mutexUnlock(addr_t m)
{
    if (race::Detector::armed())
        race::Detector::instance().releaseAddr(ctx().tile, m);
    race::Detector::InternalScope guard;
    std::uint32_t old = atomicExchange32(m, 0);
    GRAPHITE_ASSERT(old != 0);
    if (old == 2)
        futexWake(m, 1);
}

void
barrierInit(addr_t b, std::uint32_t participants)
{
    GRAPHITE_ASSERT(participants > 0);
    race::Detector::InternalScope guard;
    write<std::uint32_t>(b, 0);                 // arrival count
    write<std::uint32_t>(b + 4, 0);             // generation
    write<std::uint32_t>(b + 8, participants);  // total
}

void
barrierWait(addr_t b)
{
    race::Detector::InternalScope guard;
    addr_t count = b;
    addr_t gen = b + 4;
    std::uint32_t total = read<std::uint32_t>(b + 8);
    std::uint32_t g = read<std::uint32_t>(gen);
    // Arrival joins our clock into the generation's pending set and
    // must precede the count increment that publishes the arrival.
    bool armed = race::Detector::armed();
    std::uint64_t rgen = 0;
    if (armed)
        rgen = race::Detector::instance().barrierArrive(ctx().tile, b,
                                                        total);
    std::uint32_t n = atomicAdd32(count, 1) + 1;
    if (n == total) {
        write<std::uint32_t>(count, 0);
        atomicAdd32(gen, 1);
        futexWake(gen, std::numeric_limits<std::uint32_t>::max());
    } else {
        while (read<std::uint32_t>(gen) == g) {
            // The MCP compares against the coherent value, so a
            // mismatch means the generation already advanced even when
            // our cached copy is stale — the barrier is open.
            if (futexWait(gen, g) != 0)
                break;
        }
    }
    if (armed)
        race::Detector::instance().barrierLeave(ctx().tile, b, rgen);
}

void
condInit(addr_t cv)
{
    race::Detector::InternalScope guard;
    write<std::uint32_t>(cv, 0);
}

void
condWait(addr_t cv, addr_t m)
{
    std::uint32_t seq;
    {
        race::Detector::InternalScope guard;
        seq = read<std::uint32_t>(cv);
    }
    mutexUnlock(m);
    futexWait(cv, seq);
    mutexLock(m);
}

void
condSignal(addr_t cv)
{
    race::Detector::InternalScope guard;
    atomicAdd32(cv, 1);
    futexWake(cv, 1);
}

void
condBroadcast(addr_t cv)
{
    race::Detector::InternalScope guard;
    atomicAdd32(cv, 1);
    futexWake(cv, std::numeric_limits<std::uint32_t>::max());
}

} // namespace api
} // namespace graphite
