/**
 * @file
 * The target application programming interface.
 *
 * This is the repo's substitute for Pin-based dynamic binary translation
 * (see DESIGN.md): applications written against this API generate exactly
 * the event streams the paper's front end produced —
 *
 *  - memory references  -> the memory system (cache hierarchy, MSI
 *                          coherence, DRAM), returning modeled latency
 *                          consumed by the core model's load/store units;
 *  - instruction events -> the core performance model (direct execution:
 *                          arithmetic really runs on the host, only class
 *                          and count are modeled);
 *  - branch outcomes    -> the branch predictor;
 *  - system calls       -> the MCP (futex, file I/O, thread management);
 *  - user-level messages-> the application network (§3.3).
 *
 * All functions operate on the calling application thread's tile, bound
 * by the threading infrastructure. The sync library at the bottom
 * (mutex/barrier/condvar) is implemented purely with the target's atomic
 * operations and the emulated futex system call, mirroring how pthreads
 * are built on Linux — so application synchronization exercises the full
 * coherence + syscall stack.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_types.h"
#include "core/thread_manager.h"
#include "perf/instruction.h"

namespace graphite
{

class Simulator;

namespace api
{

namespace detail
{
/** Bind the calling host thread to @p tile of @p sim. */
void bindContext(Simulator& sim, tile_id_t tile);
/** Unbind the calling host thread. */
void unbindContext();
/** True when the calling thread is bound to a tile. */
bool bound();
} // namespace detail

/** @name Identity and time @{ */
tile_id_t tileId();
tile_id_t numTiles();
cycle_t cycle();
/** @} */

/**
 * @name Region of interest (fast-forward sampling)
 * With `snapshot/fast_forward = true` the simulation starts in
 * functional-only warmup mode; roiBegin() switches to detailed timing
 * and roiEnd() resumes warmup. No-ops when fast-forward is off, so
 * workloads may mark their ROI unconditionally.
 * @{
 */
void roiBegin();
void roiEnd();
/** @} */

/** @name Dynamic memory (target address space) @{ */
addr_t malloc(std::uint64_t size);
void free(addr_t addr);
addr_t brk(addr_t new_brk);
addr_t mmap(std::uint64_t length);
void munmap(addr_t addr, std::uint64_t length);
/** @} */

/** @name Memory references (timed, coherent) @{ */
void readMem(addr_t addr, void* out, size_t size);
void writeMem(addr_t addr, const void* in, size_t size);

template <typename T>
T
read(addr_t addr)
{
    T v;
    readMem(addr, &v, sizeof(T));
    return v;
}

template <typename T>
void
write(addr_t addr, const T& v)
{
    writeMem(addr, &v, sizeof(T));
}
/** @} */

/** @name Atomic operations (single coherence transaction) @{ */

/** Compare-and-swap; @return the previous value. */
std::uint32_t atomicCas32(addr_t addr, std::uint32_t expected,
                          std::uint32_t desired);
/** Unconditional exchange; @return the previous value. */
std::uint32_t atomicExchange32(addr_t addr, std::uint32_t value);
/** Fetch-and-add; @return the previous value. */
std::uint32_t atomicAdd32(addr_t addr, std::int32_t delta);
std::uint64_t atomicAdd64(addr_t addr, std::int64_t delta);
/** @} */

/**
 * Label subsequent memory accesses of the calling thread for race
 * reports ("access site"). @p site must be a string with static
 * lifetime (typically a literal); the label is sticky until the next
 * call. No-op while the race detector is disabled.
 */
void annotateSite(const char* site);

/** @name Instruction events (direct execution) @{ */

/** Report @p count natively executed instructions of class @p c. */
void exec(InstrClass c, std::uint64_t count = 1);

/** Report a branch at static site @p site that went @p taken. */
void branch(addr_t site, bool taken);
/** @} */

/** @name Emulated futex system call (§3.4) @{ */

/**
 * Sleep until woken, provided the 32-bit word at @p addr still equals
 * @p expected. @return 0 when woken by futexWake, -1 on value mismatch.
 */
int futexWait(addr_t addr, std::uint32_t expected);

/** Wake up to @p count waiters. @return the number woken. */
std::uint32_t futexWake(addr_t addr, std::uint32_t count);
/** @} */

/** @name Threading (§3.5) @{ */

/**
 * Spawn an application thread; the MCP assigns a free tile and the
 * owning process's LCP starts it. Fatal when every tile is occupied.
 * @return the assigned tile, which doubles as the thread handle.
 */
tile_id_t threadSpawn(thread_func_t func, void* arg);

/** Wait for the thread on @p tile to finish (clock forwards). */
void threadJoin(tile_id_t tile);
/** @} */

/** @name User-level messaging (§3.3) @{ */

/** A received user message. */
struct Message
{
    tile_id_t sender = INVALID_TILE_ID;
    std::vector<std::uint8_t> data;
};

/** Send @p len bytes to @p dst's tile. */
void msgSend(tile_id_t dst, const void* data, size_t len);

/** Blocking receive of the next user message for this tile. */
Message msgRecv();
/** @} */

/** @name File I/O, executed at the MCP (§3.4) @{ */
int fileOpen(const char* path, int flags); ///< flags: 0 read, 1 write
std::int64_t fileRead(int fd, addr_t buf, std::uint64_t len);
std::int64_t fileWrite(int fd, addr_t buf, std::uint64_t len);
std::int64_t fileSeek(int fd, std::int64_t offset, int whence);
int fileClose(int fd);
/** @} */

/**
 * @name Synchronization library
 * Target-space primitives built on atomics + futex. Storage must be
 * allocated in target memory by the application:
 * mutex 4 bytes, barrier 16 bytes, condition variable 4 bytes.
 * @{
 */
inline constexpr std::uint64_t MUTEX_BYTES = 4;
inline constexpr std::uint64_t BARRIER_BYTES = 16;
inline constexpr std::uint64_t COND_BYTES = 4;

void mutexInit(addr_t m);
void mutexLock(addr_t m);
void mutexUnlock(addr_t m);

void barrierInit(addr_t b, std::uint32_t participants);
void barrierWait(addr_t b);

void condInit(addr_t cv);
void condWait(addr_t cv, addr_t m); ///< may wake spuriously; re-check
void condSignal(addr_t cv);
void condBroadcast(addr_t cv);
/** @} */

} // namespace api
} // namespace graphite
