/**
 * @file
 * Simulator-internal control messages (MCP/LCP protocol).
 *
 * The MCP (Master Control Program, one per simulation) and the LCPs
 * (Local Control Programs, one per simulated host process) provide
 * "services for synchronization, system call execution and thread
 * management" (paper §2.2). These messages flow over the physical
 * transport between tile endpoints and the MCP/LCP endpoints.
 *
 * Function pointers cross (simulated) process boundaries as raw values:
 * the paper relies on every process executing the same statically linked
 * binary so code addresses agree (§3.2.1); within this in-process cluster
 * simulation that property holds trivially.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/fixed_types.h"
#include "common/log.h"

namespace graphite
{

/** Sender id used in packets originating at the MCP. */
inline constexpr tile_id_t MCP_SENDER = -2;

/** MCP/LCP message opcodes. */
enum class SysMsgType : std::uint32_t
{
    SpawnRequest = 1,  ///< app -> MCP: create a thread
    SpawnReply,        ///< MCP -> app: allocated tile (or error)
    SpawnToLcp,        ///< MCP -> LCP: start the host thread
    JoinRequest,       ///< app -> MCP: wait for a tile's thread
    JoinReply,         ///< MCP -> app: thread finished
    ThreadExit,        ///< app -> MCP: this tile's thread is done
    FutexWait,         ///< app -> MCP
    FutexWaitReply,    ///< MCP -> app: woken (or value mismatch)
    FutexWake,         ///< app -> MCP
    FutexWakeReply,    ///< MCP -> app: number woken
    FileOp,            ///< app -> MCP: open/read/write/close/seek
    FileOpReply,       ///< MCP -> app
    Shutdown,          ///< simulator -> MCP: drain and stop
    ShutdownAck,       ///< MCP -> simulator
    LcpShutdown        ///< MCP -> LCP: stop
};

/** Header common to all system messages. */
struct SysMsgHeader
{
    SysMsgType type;
    tile_id_t srcTile;   ///< requesting tile (or INVALID for simulator)
    cycle_t timestamp;   ///< sender's simulated clock
};

/** Spawn request/forward payload. */
struct SpawnBody
{
    std::uint64_t func; ///< void(*)(void*) as integer
    std::uint64_t arg;  ///< void* as integer
    tile_id_t tile;     ///< chosen tile (SpawnToLcp / SpawnReply)
    std::int32_t error; ///< 0 ok; nonzero when no tile free
};

/** Join request/reply payload. */
struct JoinBody
{
    tile_id_t tile;      ///< tile whose thread to join
    cycle_t exitClock;   ///< joined thread's clock at exit (reply)
};

/** Futex payload. */
struct FutexBody
{
    addr_t addr;
    std::uint32_t value;   ///< expected value (wait)
    std::uint32_t count;   ///< wake count (wake) / woken (reply)
    std::int32_t result;   ///< 0 ok, EAGAIN-style mismatch = -1
};

/** File-operation payload (fixed header; data follows inline). */
struct FileOpBody
{
    enum Op : std::uint32_t { Open = 1, Close, Read, Write, Seek };
    std::uint32_t op;
    std::int32_t fd;
    std::int64_t result;
    std::uint64_t length;  ///< data length / requested byte count
    std::int64_t offset;   ///< seek offset
    std::uint32_t flags;   ///< open flags (0 read, 1 write-create) / whence
    addr_t bufAddr;        ///< target buffer address (Read)
    // Open: path bytes follow. Write: data bytes follow.
};

/** Serialize header + body + optional trailing bytes into a buffer. */
template <typename Body>
std::vector<std::uint8_t>
packSysMsg(const SysMsgHeader& hdr, const Body& body,
           const void* extra = nullptr, size_t extra_len = 0)
{
    std::vector<std::uint8_t> out(sizeof(SysMsgHeader) + sizeof(Body) +
                                  extra_len);
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    std::memcpy(out.data() + sizeof(hdr), &body, sizeof(body));
    if (extra_len > 0)
        std::memcpy(out.data() + sizeof(hdr) + sizeof(body), extra,
                    extra_len);
    return out;
}

/** Header-only message. */
inline std::vector<std::uint8_t>
packSysMsg(const SysMsgHeader& hdr)
{
    std::vector<std::uint8_t> out(sizeof(SysMsgHeader));
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
}

/** Read the header from a raw buffer. */
inline SysMsgHeader
peekHeader(const std::vector<std::uint8_t>& buf)
{
    if (buf.size() < sizeof(SysMsgHeader))
        panic("system message too short ({} bytes)", buf.size());
    SysMsgHeader hdr;
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    return hdr;
}

/** Read the body following the header. */
template <typename Body>
Body
unpackBody(const std::vector<std::uint8_t>& buf)
{
    if (buf.size() < sizeof(SysMsgHeader) + sizeof(Body))
        panic("system message body too short ({} bytes)", buf.size());
    Body body;
    std::memcpy(&body, buf.data() + sizeof(SysMsgHeader), sizeof(body));
    return body;
}

/** Trailing bytes after header + body. */
template <typename Body>
std::vector<std::uint8_t>
unpackExtra(const std::vector<std::uint8_t>& buf)
{
    size_t off = sizeof(SysMsgHeader) + sizeof(Body);
    GRAPHITE_ASSERT(buf.size() >= off);
    return std::vector<std::uint8_t>(buf.begin() + off, buf.end());
}

} // namespace graphite
