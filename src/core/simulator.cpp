#include "core/simulator.h"

#include <chrono>
#include <sstream>

#include "check/fault.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "common/table.h"
#include "obs/accuracy/accuracy.h"
#include "obs/observability.h"
#include "obs/profiler.h"
#include "obs/span/span_sink.h"
#include "obs/telemetry/flight_recorder.h"
#include "race/detector.h"
#include "transport/socket_transport.h"

namespace graphite
{

Simulator*&
Simulator::currentSlot()
{
    static Simulator* current = nullptr;
    return current;
}

Simulator*
Simulator::current()
{
    Simulator* sim = currentSlot();
    GRAPHITE_ASSERT(sim != nullptr);
    return sim;
}

Simulator::Simulator(Config cfg)
    : cfg_(std::move(cfg)),
      topo_(static_cast<tile_id_t>(cfg_.getInt("general/total_tiles")),
            static_cast<proc_id_t>(
                cfg_.getInt("general/num_processes", 1)),
            static_cast<int>(
                cfg_.getInt("host/processes_per_machine", 1)))
{
    obs::Observability::instance().configure(cfg_, topo_.totalTiles());
    check::FaultPlan::instance().configure(cfg_);
    race::Detector::instance().configure(cfg_, topo_.totalTiles());
    GRAPHITE_PROFILE_SCOPE("sim.init");

    transport_ = createTransport(topo_, cfg_);
    fabric_ = std::make_unique<NetworkFabric>(topo_, cfg_);
    memory_ = std::make_unique<MemorySystem>(topo_, *fabric_, cfg_);
    sync_ = SyncModel::create(cfg_, topo_.totalTiles());

    host::SchedulerConfig sched_cfg =
        host::SchedulerConfig::fromConfig(cfg_);
    if (sched_cfg.mode != host::SchedMode::Off)
        sched_ = std::make_unique<host::HostScheduler>(
            sched_cfg, topo_.totalTiles());
    // Sync models that block integrate slot release; null is fine.
    sync_->attachScheduler(sched_.get());

    tiles_.reserve(topo_.totalTiles());
    for (tile_id_t t = 0; t < topo_.totalTiles(); ++t)
        tiles_.push_back(
            std::make_unique<Tile>(t, cfg_, *fabric_, *transport_));

    // Hand the accuracy observatory live clock pointers so delivery
    // hooks can compare event timestamps against receiver clocks. The
    // clocks are detached again in Observability::finalize(), before
    // the tiles die.
    if (obs::accuracy::AccuracyObservatory::armed())
        for (tile_id_t t = 0; t < topo_.totalTiles(); ++t)
            obs::accuracy::AccuracyObservatory::instance().attachClock(
                t, tiles_[t]->core().clockPtr());

    threads_ = std::make_unique<ThreadManager>(*this);

    syncCheckInterval_ = cfg_.getInt("sync/check_interval", 200);
    syscallCost_ = cfg_.getInt("system/syscall_cost", 100);
    spawnCost_ = cfg_.getInt("system/spawn_cost", 1000);
    ffEnabled_ = cfg_.getBool("snapshot/fast_forward", false);
    ffDetailAt_ = cfg_.getInt("snapshot/ff_detail_at", 0);

    telemetryPort_ =
        static_cast<int>(cfg_.getInt("telemetry/http_port", -1));
    watchdogEnabled_ = cfg_.getBool("telemetry/watchdog", true);
    watchdogConfig_.intervalMs = static_cast<std::uint64_t>(
        cfg_.getInt("telemetry/watchdog_interval_ms", 250));
    watchdogConfig_.stallBeats = static_cast<int>(
        cfg_.getInt("telemetry/watchdog_stall_beats", 8));
    watchdogConfig_.dumpBeats = static_cast<int>(
        cfg_.getInt("telemetry/watchdog_dump_beats", 4));
    watchdogConfig_.dumpPath =
        cfg_.getString("telemetry/watchdog_dump", "");
    std::string action =
        cfg_.getString("telemetry/watchdog_action", "flag");
    if (action == "flag")
        watchdogConfig_.action = obs::telemetry::WatchdogAction::Flag;
    else if (action == "dump")
        watchdogConfig_.action = obs::telemetry::WatchdogAction::Dump;
    else if (action == "abort")
        watchdogConfig_.action = obs::telemetry::WatchdogAction::Abort;
    else
        fatal("telemetry/watchdog_action must be flag|dump|abort, "
              "got '{}'",
              action);

    registerStats();
    obs::Observability::instance().attachSources(
        &stats_, [this] { return simulatedTime(); },
        [this] {
            std::vector<double> clocks;
            clocks.reserve(tiles_.size());
            for (const auto& tile : tiles_) {
                cycle_t c = tile->core().cycle();
                if (tile->running() && c > 0)
                    clocks.push_back(static_cast<double>(c));
            }
            return clocks;
        },
        [this] { return fabric_->progress().estimate(); });
}

Simulator::~Simulator()
{
    // If run() never completed (error paths), still flush artifacts and
    // detach the obs layer from soon-to-die members.
    obs::Observability::instance().finalize();
    if (currentSlot() == this)
        currentSlot() = nullptr;
}

void
Simulator::registerStats()
{
    for (tile_id_t t = 0; t < topo_.totalTiles(); ++t) {
        const CoreModel* core = &tiles_[t]->core();
        stats_.registerGauge(strfmt("tile.{}.cycles", t),
                             [core] { return core->cycle(); });
        stats_.registerGauge(
            strfmt("tile.{}.instructions", t),
            [core] { return core->instructionsRetired(); });
        MemorySystem* mem = memory_.get();
        stats_.registerGauge(strfmt("tile.{}.l1d.misses", t),
                             [mem, t]() -> stat_t {
                                 Cache* c = mem->l1d(t);
                                 return c ? c->misses() : 0;
                             });
        stats_.registerGauge(strfmt("tile.{}.l2.misses", t), [mem, t] {
            return mem->l2(t).misses();
        });
    }

    // Aggregates are maintained on the memory system's hot path as
    // shared atomic counters, so the interval sampler reads one word
    // instead of walking every tile per sample.
    MemorySystem* mem = memory_.get();
    stats_.registerCounter("mem.l2_misses_total",
                           mem->l2MissesCounter());
    stats_.registerCounter("mem.accesses_total",
                           mem->totalAccessesCounter());
    stats_.registerCounter("mem.writebacks_total",
                           mem->writebacksCounter());
    stats_.registerCounter("mem.shard_lock.acquisitions",
                           mem->shardLockAcquisitionsCounter());
    stats_.registerCounter("mem.shard_lock.contended",
                           mem->shardLockContendedCounter());
    stats_.registerCounter("mem.shard_lock.wait_ns",
                           mem->shardLockWaitNsCounter());
    stats_.registerCounter("mem.tile_lock.acquisitions",
                           mem->tileLockAcquisitionsCounter());
    stats_.registerCounter("mem.tile_lock.contended",
                           mem->tileLockContendedCounter());
    stats_.registerCounter("mem.tile_lock.wait_ns",
                           mem->tileLockWaitNsCounter());
    stats_.registerHistogram("mem.access_latency",
                             &memory_->accessLatencyHistogram());

    NetworkFabric* fabric = fabric_.get();
    auto net_gauges = [&](const char* tag, PacketType type) {
        stats_.registerGauge(strfmt("net.{}.packets", tag),
                             [fabric, type] {
                                 return fabric->modelFor(type)
                                     .packetsRouted();
                             });
        stats_.registerGauge(strfmt("net.{}.bytes", tag),
                             [fabric, type] {
                                 return fabric->modelFor(type)
                                     .bytesRouted();
                             });
    };
    net_gauges("app", PacketType::App);
    net_gauges("memory", PacketType::Memory);
    net_gauges("system", PacketType::System);
    stats_.registerGauge("net.inflight_packets", [fabric] {
        return fabric->inflightAppPackets();
    });
    Transport* transport = transport_.get();
    stats_.registerGauge("transport.queue_depth", [transport] {
        return static_cast<stat_t>(transport->totalPending());
    });

    SyncModel* sync = sync_.get();
    stats_.registerGauge("sync.events",
                         [sync] { return sync->syncEvents(); });
    stats_.registerGauge("sync.wait_us", [sync] {
        return sync->syncWaitMicroseconds();
    });

    if (sched_ != nullptr) {
        host::HostScheduler* sched = sched_.get();
        stats_.registerGauge("host.pool.slots", [sched] {
            return static_cast<stat_t>(sched->slots());
        });
        stats_.registerGauge("host.pool.executing", [sched] {
            return static_cast<stat_t>(sched->gauges().executing);
        });
        stats_.registerGauge("host.pool.runnable", [sched] {
            return static_cast<stat_t>(sched->gauges().runnable);
        });
        stats_.registerGauge("host.pool.blocked", [sched] {
            return static_cast<stat_t>(sched->gauges().blocked);
        });
        stats_.registerGauge("host.pool.skew_parked", [sched] {
            return static_cast<stat_t>(sched->gauges().skewParked);
        });
        stats_.registerCounter("host.pool.quanta",
                               sched->quantaCounter());
        stats_.registerCounter("host.pool.yields",
                               sched->yieldsCounter());
        stats_.registerCounter("host.pool.skew_parks",
                               sched->skewParksCounter());
        stats_.registerCounter("host.pool.skew_park_ns",
                               sched->skewParkNsCounter());
    }

    if (race::Detector::armed()) {
        race::Detector* det = &race::Detector::instance();
        stats_.registerGauge("race.races",
                             [det] { return det->raceCount(); });
        stats_.registerGauge("race.words_checked",
                             [det] { return det->wordsChecked(); });
        stats_.registerGauge("race.sync_edges",
                             [det] { return det->syncEdges(); });
        stats_.registerGauge("race.shadow_lines",
                             [det] { return det->shadowLines(); });
        stats_.registerGauge("race.shadow_evictions",
                             [det] { return det->shadowEvictions(); });
        stats_.registerGauge("race.shadow_expansions",
                             [det] { return det->shadowExpansions(); });
    }

    if (obs::SpanSink::enabled()) {
        obs::SpanSink* spans = &obs::SpanSink::instance();
        stats_.registerCounter("span.completed",
                               spans->completedCounter());
        for (int s = 0; s < obs::NUM_SPAN_STAGES; ++s) {
            auto stage = static_cast<obs::SpanStage>(s);
            stats_.registerCounter(
                strfmt("span.stage.{}_cycles", obs::spanStageName(stage)),
                spans->stageCyclesCounter(stage));
        }
    }

    if (obs::accuracy::AccuracyObservatory::armed()) {
        auto* acc = &obs::accuracy::AccuracyObservatory::instance();
        stats_.registerCounter("accuracy.deliveries",
                               acc->deliveriesCounter());
        stats_.registerCounter("accuracy.violations",
                               acc->violationsCounter());
        stats_.registerGauge("accuracy.worst_magnitude_cycles",
                             [acc] { return acc->worstMagnitude(); });
        stats_.registerHistogram("accuracy.magnitude",
                                 acc->magnitudeHistogram());
        for (int p = 0; p < obs::accuracy::NUM_VIOLATION_POINTS; ++p) {
            auto point = static_cast<obs::accuracy::ViolationPoint>(p);
            stats_.registerGauge(
                strfmt("accuracy.violations.{}",
                       obs::accuracy::violationPointName(point)),
                [acc, point] { return acc->pointViolations(point); });
        }
        stats_.registerHistogram(
            "accuracy.net_latency.app",
            acc->netLatencyHistogram(
                static_cast<int>(PacketType::App)));
        stats_.registerHistogram(
            "accuracy.net_latency.memory",
            acc->netLatencyHistogram(
                static_cast<int>(PacketType::Memory)));
        stats_.registerHistogram(
            "accuracy.net_latency.system",
            acc->netLatencyHistogram(
                static_cast<int>(PacketType::System)));
        stats_.registerGauge("sync.skew_pair_max_cycles",
                             [acc] { return acc->pairSkewMax(); });
        stats_.registerGauge("sync.skew_pair_mean_cycles", [acc] {
            return static_cast<stat_t>(acc->pairSkewMean());
        });
        stats_.registerGauge("sync.skew_pair_samples",
                             [acc] { return acc->pairSamples(); });
    }

    ThreadManager* threads = threads_.get();
    stats_.registerGauge("threads.spawned",
                         [threads] { return threads->threadsSpawned(); });
    stats_.registerGauge("syscalls.total",
                         [threads] { return threads->totalSyscalls(); });
    stats_.registerGauge("sim.cycles_max",
                         [this] { return simulatedTime(); });
    stats_.registerGauge("sim.instructions_total",
                         [this] { return totalInstructions(); });

    // Telemetry plane: scrape counters, watchdog verdict counters, and
    // the flight recorder's high-water mark.
    stats_.registerCounter("telemetry.http.requests",
                           &telemetryServer_.requestsServed());
    stats_.registerCounter("telemetry.http.bytes",
                           &telemetryServer_.bytesServed());
    stats_.registerCounter("telemetry.stall.beats", &watchdog_.beats());
    stats_.registerCounter("telemetry.stall.stalls",
                           &watchdog_.stallFlags());
    stats_.registerCounter("telemetry.stall.deadlocks",
                           &watchdog_.deadlockFlags());
    stats_.registerCounter("telemetry.stall.livelocks",
                           &watchdog_.livelockFlags());
    stats_.registerCounter("telemetry.stall.dumps", &watchdog_.dumps());
    stats_.registerGauge("telemetry.recorder.events", [] {
        return obs::telemetry::FlightRecorder::instance().recorded();
    });
}

obs::telemetry::StatusSource
Simulator::makeStatusSource()
{
    obs::telemetry::StatusSource src;
    src.stats = &stats_;
    src.tiles = [this] {
        std::vector<obs::telemetry::TileStatus> out;
        out.reserve(tiles_.size());
        for (const auto& tile : tiles_) {
            obs::telemetry::TileStatus ts;
            ts.tile = tile->id();
            ts.cycles = tile->core().cycle();
            ts.instructions = tile->core().instructionsRetired();
            ts.occupied = tile->occupied();
            ts.running = tile->running();
            out.push_back(ts);
        }
        return out;
    };
    src.simulatedTime = [this] { return simulatedTime(); };
    src.waitSets = [this] { return threads_->waitSets(); };
    src.transportQueueDepth = [this] {
        return static_cast<stat_t>(transport_->totalPending());
    };
    src.inflightPackets = [this] {
        return fabric_->inflightAppPackets();
    };
    src.syncEvents = [this] { return sync_->syncEvents(); };
    src.syncWaitUs = [this] { return sync_->syncWaitMicroseconds(); };
    if (sched_ != nullptr) {
        host::HostScheduler* sched = sched_.get();
        src.hostPool = [sched] {
            obs::telemetry::HostPoolStatus hp;
            hp.enabled = true;
            hp.mode = sched->modeName();
            host::PoolGauges g = sched->gauges();
            hp.slots = g.slots;
            hp.executing = g.executing;
            hp.runnable = g.runnable;
            hp.blocked = g.blocked;
            hp.skewParked = g.skewParked;
            hp.quanta = sched->quantaCounter()->load();
            hp.yields = sched->yieldsCounter()->load();
            hp.skewParks = sched->skewParksCounter()->load();
            hp.skewParkNs = sched->skewParkNsCounter()->load();
            return hp;
        };
    }
    src.syncModelName = sync_->name();
    return src;
}

void
Simulator::attachSkewTracker(SkewTracker* tracker)
{
    skew_ = tracker;
    if (tracker != nullptr) {
        std::vector<SkewSource> cores;
        cores.reserve(tiles_.size());
        for (const auto& t : tiles_)
            cores.push_back(SkewSource{&t->core(), t->runningFlag()});
        tracker->attachCores(std::move(cores));
    }
}

Tile&
Simulator::tile(tile_id_t id)
{
    GRAPHITE_ASSERT(id >= 0 && id < topo_.totalTiles());
    return *tiles_[id];
}

SimulationSummary
Simulator::run(thread_func_t app_main, void* arg)
{
    GRAPHITE_ASSERT(currentSlot() == nullptr);
    currentSlot() = this;

    if (telemetryPort_ >= 0 && !telemetryServer_.running()) {
        telemetryServer_.start(
            static_cast<std::uint16_t>(telemetryPort_),
            makeStatusSource(),
            [this] { return watchdog_.view(); });
    }
    if (watchdogEnabled_)
        watchdog_.start(watchdogConfig_, makeStatusSource());

    // Re-runnable: a second run() (or one resumed from a checkpoint)
    // must grant host execution slots from the same cursor position.
    if (sched_)
        sched_->resetForRun();
    beginFastForward();

    auto t0 = std::chrono::steady_clock::now();
    {
        GRAPHITE_PROFILE_SCOPE("sim.run");
        threads_->start();
        threads_->launchMain(app_main, arg);
        threads_->waitForShutdown();
    }
    auto t1 = std::chrono::steady_clock::now();

    // Leave detailed mode armed for the next segment: a checkpoint
    // written now is a warmed state that sweeps resume in full detail.
    endFastForward();

    // The watchdog only judges an in-flight run; the HTTP server keeps
    // serving final values until the Simulator dies so external probes
    // can scrape a quiescent /metrics (see --telemetry-linger).
    watchdog_.stop();

    currentSlot() = nullptr;
    obs::Observability::instance().finalize();

    // The memory system is self-verifying: protocol state must be
    // consistent at quiescence. On by default so every system test
    // inherits the check; perf runs can disable it.
    if (cfg_.getBool("check/validate_at_shutdown", true)) {
        std::string err = memory_->validateCoherence();
        if (!err.empty())
            fatal("coherence validation failed at shutdown: {}", err);
    }

    if (race::Detector::armed()) {
        race::Detector& det = race::Detector::instance();
        det.finalizeReport();
        for (const race::RaceRecord& r : det.records())
            warn("race detector: {}", det.describe(r));
    }

    SimulationSummary summary;
    summary.simulatedCycles = simulatedTime();
    summary.totalInstructions = totalInstructions();
    summary.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    summary.threadsSpawned = threads_->threadsSpawned();
    return summary;
}

cycle_t
Simulator::simulatedTime() const
{
    cycle_t max_clock = 0;
    for (const auto& tile : tiles_)
        max_clock = std::max(max_clock, tile->core().cycle());
    return max_clock;
}

std::string
Simulator::statsReport() const
{
    std::ostringstream os;
    os << "=== simulation summary ===\n";
    os << "target tiles      : " << topo_.totalTiles() << "\n";
    os << "host processes    : " << topo_.numProcesses() << "\n";
    os << "simulated cycles  : " << simulatedTime() << "\n";
    os << "instructions      : " << totalInstructions() << "\n";
    os << "threads spawned   : " << threads_->threadsSpawned() << "\n";
    os << "syscalls          : " << threads_->totalSyscalls() << "\n";
    os << "sync model        : " << sync_->name() << " (events "
       << sync_->syncEvents() << ", waited "
       << sync_->syncWaitMicroseconds() << " us)\n";
    os << "target heap       : "
       << memory_->manager().bytesAllocated() << " bytes in "
       << memory_->manager().allocationCount() << " allocations\n";
    if (race::Detector::armed()) {
        const race::Detector& det = race::Detector::instance();
        os << "race detector     : " << det.raceCount()
           << " races (words checked " << det.wordsChecked()
           << ", sync edges " << det.syncEdges() << ", shadow lines "
           << det.shadowLines() << ")\n";
    }

    os << "\n=== network models ===\n";
    TextTable net;
    net.header({"network", "model", "packets", "bytes", "hops",
                "total latency"});
    auto type_name = [](PacketType t) {
        switch (t) {
          case PacketType::App: return "app";
          case PacketType::Memory: return "memory";
          case PacketType::System: return "system";
          default: return "?";
        }
    };
    for (PacketType t : {PacketType::App, PacketType::Memory,
                         PacketType::System}) {
        const NetworkModel& m = fabric().modelFor(t);
        net.row({type_name(t), m.name(),
                 std::to_string(m.packetsRouted()),
                 std::to_string(m.bytesRouted()),
                 std::to_string(m.totalHops()),
                 std::to_string(m.totalLatency())});
    }
    os << net.render();

    os << "\n=== per-tile detail ===\n";
    TextTable tiles;
    tiles.header({"tile", "cycles", "instr", "l1d acc", "l1d miss",
                  "l2 miss", "cold", "cap", "true", "false", "upgr",
                  "wb"});
    for (tile_id_t t = 0; t < topo_.totalTiles(); ++t) {
        const CoreModel& core = tiles_[t]->core();
        if (core.instructionsRetired() == 0)
            continue; // idle tile
        MemorySystem& mem = *memory_;
        const TileMemoryStats& ms = mem.stats(t);
        Cache* l1d = mem.l1d(t);
        tiles.row({std::to_string(t), std::to_string(core.cycle()),
                   std::to_string(core.instructionsRetired()),
                   std::to_string(l1d ? l1d->accesses() : 0),
                   std::to_string(l1d ? l1d->misses() : 0),
                   std::to_string(mem.l2(t).misses()),
                   std::to_string(ms.l2ColdMisses),
                   std::to_string(ms.l2CapacityMisses),
                   std::to_string(ms.l2TrueSharingMisses),
                   std::to_string(ms.l2FalseSharingMisses),
                   std::to_string(ms.l2UpgradeMisses),
                   std::to_string(ms.writebacks)});
    }
    os << tiles.render();

    if (obs::HostProfiler::instance().enabled()) {
        os << "\n=== host self-profile ===\n";
        os << obs::HostProfiler::instance().report();
    }
    return os.str();
}

stat_t
Simulator::totalInstructions() const
{
    stat_t total = 0;
    for (const auto& tile : tiles_)
        total += tile->core().instructionsRetired();
    return total;
}

} // namespace graphite
