/**
 * @file
 * FastTrack-style happens-before race detector for simulated target
 * programs (Flanagan & Freund, PLDI'09 adapted to the simulator).
 *
 * Graphite's functional/modeled co-design means the simulator already
 * observes every target memory reference (api::read/write) and every
 * synchronization event (atomics, emulated futex, spawn/join, user
 * messages) — exactly the event stream a dynamic race detector needs,
 * with no extra instrumentation of the target.
 *
 * Model:
 *  - Each application thread (= tile occupant) carries a vector clock;
 *    its own component is its *epoch* (tile, clock), incremented at
 *    every release operation.
 *  - Plain reads/writes are checked against per-word shadow cells
 *    holding the last-write epoch and either a last-read epoch or a
 *    promoted read vector clock (the FastTrack optimization: reads are
 *    almost always ordered, so a full VC is only materialized when two
 *    unordered reads are observed).
 *  - Atomic RMWs are synchronization operations, not data accesses:
 *    they acquire from and release to a per-address sync clock. A
 *    *failed* CAS performs the acquire only — it publishes nothing
 *    (satellite regression, see tests/test_race.cpp).
 *  - The sync library (mutex/barrier/condvar in api.cpp) is treated
 *    like an interposed pthread library: its internal accesses are
 *    suppressed via InternalScope and replaced by primitive-level
 *    edges (acquireAddr/releaseAddr, barrierArrive/Leave). Checking
 *    the raw futex spin loops instead would false-positive on benign
 *    patterns such as the barrier's plain count reset.
 *  - MCP-derived edges (futexWake -> woken waiter, spawn, join,
 *    thread exit) are applied by the MCP service thread while both
 *    endpoints are blocked on their replies, so their vector clocks
 *    are quiescent. A futexWake edge forms only when the wake actually
 *    transfers to a queued waiter (count consumed); a value-mismatch
 *    futexWait return establishes no ordering.
 *
 * Shadow memory is a sharded hash of 64-byte lines. Granularity
 * (race/granularity):
 *  - adaptive (default): a line touched by a single thread uses a
 *    compact cell (per-word scalar clocks + owning tile) and expands
 *    losslessly to full per-word FastTrack cells on second-thread
 *    access. Exact, and bounds memory on the common mostly-private
 *    workload footprint.
 *  - word: always full per-word cells.
 *  - line: one cell per 64-byte line. Coarse — flags false sharing as
 *    if it were a race — only for memory-constrained runs.
 * race/max_shadow_lines bounds the table; eviction forgets history,
 * which can only miss races, never invent them.
 *
 * Config ([race]): enabled, granularity, max_shadow_lines, max_records,
 * report_out (JSONL for tools/race_report.py).
 *
 * Like check::FaultPlan, the detector is process-global, reconfigured
 * by each Simulator's constructor; the disabled hot path is one relaxed
 * atomic load.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"

namespace graphite
{

class Config;

namespace race
{

/** An epoch: (tile, scalar clock) packed as tile<<48 | clock. */
using epoch_t = std::uint64_t;

inline constexpr epoch_t EPOCH_NONE = 0;

inline epoch_t
makeEpoch(tile_id_t tile, std::uint64_t clock)
{
    return (static_cast<epoch_t>(static_cast<std::uint32_t>(tile)) << 48) |
           (clock & ((1ull << 48) - 1));
}

inline tile_id_t
epochTile(epoch_t e)
{
    return static_cast<tile_id_t>(e >> 48);
}

inline std::uint64_t
epochClock(epoch_t e)
{
    return e & ((1ull << 48) - 1);
}

/** Shadow granularity (race/granularity). */
enum class Granularity : std::uint8_t
{
    Adaptive = 0,
    Word,
    Line,
};

/** Kind of detected conflict. */
enum class RaceKind : std::uint8_t
{
    WriteWrite = 0,
    ReadWrite, ///< earlier read, racing write
    WriteRead, ///< earlier write, racing read
};

/** One deduplicated race report. */
struct RaceRecord
{
    RaceKind kind = RaceKind::WriteWrite;
    addr_t addr = 0;
    tile_id_t prevTile = INVALID_TILE_ID;
    tile_id_t curTile = INVALID_TILE_ID;
    std::uint64_t prevClock = 0;
    std::uint64_t curClock = 0;
    std::uint32_t prevSite = 0;
    std::uint32_t curSite = 0;
    cycle_t cycle = 0;       ///< simulated time of the second access
    std::uint64_t count = 1; ///< occurrences folded into this record
};

/** Process-global happens-before race detector. */
class Detector
{
  public:
    static Detector& instance();

    /** Read the [race] keys and (re)arm; resets all state. */
    void configure(const Config& cfg, tile_id_t total_tiles);

    /** Cheap hot-path guard: detector armed in this process? */
    static bool
    armed()
    {
        return armedFlag_.load(std::memory_order_relaxed);
    }

    /**
     * Suppress data-access checking on the calling thread while alive
     * (sync-library internals). Sync edges still apply. Nestable.
     */
    struct InternalScope
    {
        InternalScope();
        ~InternalScope();
        InternalScope(const InternalScope&) = delete;
        InternalScope& operator=(const InternalScope&) = delete;
    };

    /** True while the calling thread is inside an InternalScope. */
    static bool suppressed();

    /**
     * Set the calling thread's current access-site label (sticky until
     * the next call); @return the interned site id.
     */
    std::uint32_t setSite(const char* name);

    /** @name Data accesses (checked) @{ */

    /** One plain access of @p size bytes; split into 4-byte words. */
    void onAccess(tile_id_t tile, addr_t addr, std::uint64_t size,
                  bool is_write, cycle_t when);

    /** Forget shadow history for [addr, addr+size) (alloc reuse). */
    void clearRange(addr_t addr, std::uint64_t size);
    /** @} */

    /** @name Synchronization edges @{ */

    /**
     * Atomic RMW on @p addr: acquire from the address's sync clock and,
     * when @p release (CAS success, exchange, add), publish to it.
     * A failed CAS must pass release=false.
     */
    void onAtomic(tile_id_t tile, addr_t addr, bool release);

    /** Lock-level acquire of @p addr (after mutexLock succeeds). */
    void acquireAddr(tile_id_t tile, addr_t addr);

    /** Lock-level release of @p addr (before mutexUnlock's exchange). */
    void releaseAddr(tile_id_t tile, addr_t addr);

    /**
     * Barrier arrival: joins the caller's clock into the generation's
     * pending set (release). The last of @p total arrivals closes the
     * generation. @return the generation joined, for barrierLeave().
     */
    std::uint64_t barrierArrive(tile_id_t tile, addr_t barrier,
                                std::uint32_t total);

    /** Barrier departure: acquire generation @p gen's closed set. */
    void barrierLeave(tile_id_t tile, addr_t barrier, std::uint64_t gen);

    /**
     * Direct edge from -> to (MCP: futex wake transfer, spawn, join,
     * exit). Both endpoints must be quiescent (blocked on MCP replies,
     * or not yet running). Acts as release(from) + acquire(to).
     */
    void edge(tile_id_t from, tile_id_t to);

    /** New occupant of @p tile begins (epoch bump; VC is inherited —
     *  reuse of a freed tile is ordered through exit->MCP->spawn). */
    void threadStart(tile_id_t tile);

    /** Message send: push sender's clock on the (from,to) channel. */
    void msgSendEdge(tile_id_t from, tile_id_t to);

    /** Message receipt: pop and acquire the matching pushed clock. */
    void msgRecvEdge(tile_id_t from, tile_id_t to);
    /** @} */

    /** @name Reporting @{ */

    /** Deduplicated records, in first-detection order. */
    std::vector<RaceRecord> records() const;

    /** Human-readable one-liner for @p r. */
    std::string describe(const RaceRecord& r) const;

    /** Resolve an interned site id. */
    std::string siteName(std::uint32_t id) const;

    /** Write records as JSONL to race/report_out, when configured. */
    void finalizeReport() const;

    stat_t raceCount() const
    {
        return races_.load(std::memory_order_relaxed);
    }
    stat_t wordsChecked() const
    {
        return checked_.load(std::memory_order_relaxed);
    }
    stat_t syncEdges() const
    {
        return edges_.load(std::memory_order_relaxed);
    }
    stat_t shadowLines() const;
    stat_t shadowEvictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    stat_t shadowExpansions() const
    {
        return expansions_.load(std::memory_order_relaxed);
    }
    /** @} */

    static Granularity parseGranularity(const std::string& name);

  private:
    static constexpr std::uint32_t LINE_BYTES = 64;
    static constexpr std::uint32_t WORDS_PER_LINE = LINE_BYTES / 4;
    static constexpr std::uint32_t NUM_SHARDS = 64;

    /** Per-thread (tile-slot) clock state; guarded by syncMutex_. */
    struct ThreadState
    {
        /** vc[t] = latest epoch of t known to happen-before us;
         *  vc[self] is our own clock. */
        std::vector<std::uint64_t> vc;
    };

    /** Expanded FastTrack cell for one 4-byte word. */
    struct WordCell
    {
        epoch_t w = EPOCH_NONE; ///< last write
        epoch_t r = EPOCH_NONE; ///< last read, when readVc is empty
        std::uint32_t wSite = 0;
        std::uint32_t rSite = 0;
        /** Promoted read clock (per-tile), empty unless two unordered
         *  reads were seen since the last write. */
        std::vector<std::uint64_t> readVc;
    };

    /** Shadow state for one 64-byte line. */
    struct ShadowLine
    {
        /** Compact single-owner representation (adaptive mode): all
         *  clocks belong to `owner`. owner < 0 = expanded. */
        tile_id_t owner = INVALID_TILE_ID;
        std::array<std::uint64_t, WORDS_PER_LINE> cw{};
        std::array<std::uint64_t, WORDS_PER_LINE> cr{};
        std::array<std::uint32_t, WORDS_PER_LINE> cwSite{};
        std::array<std::uint32_t, WORDS_PER_LINE> crSite{};
        std::vector<WordCell> cells; ///< expanded per-word cells
    };

    struct Shard
    {
        lockdep::OrderedMutex mutex{lockdep::LockClass::race_shadow};
        std::unordered_map<addr_t, ShadowLine> lines;
    };

    /** One barrier address's generation machinery. */
    struct BarrierState
    {
        std::uint64_t gen = 0;
        std::uint32_t arrived = 0;
        std::vector<std::uint64_t> pending;
        /** Closed generations (last two kept). */
        std::map<std::uint64_t, std::vector<std::uint64_t>> released;
    };

    Detector()
    {
        for (std::size_t i = 0; i < NUM_SHARDS; ++i)
            shards_[i].mutex.setInstance(static_cast<std::int64_t>(i));
    }

    void checkWord(tile_id_t tile, const std::vector<std::uint64_t>& vc,
                   addr_t word_addr, bool is_write, std::uint32_t site,
                   cycle_t when);
    void expandLine(ShadowLine& line) const;
    void report(RaceKind kind, addr_t addr, epoch_t prev,
                std::uint32_t prev_site, tile_id_t cur_tile,
                std::uint64_t cur_clock, std::uint32_t cur_site,
                cycle_t when);

    /** Join @p from into @p into (component-wise max). */
    static void join(std::vector<std::uint64_t>& into,
                     const std::vector<std::uint64_t>& from);

    static std::atomic<bool> armedFlag_;

    tile_id_t totalTiles_ = 0;
    Granularity granularity_ = Granularity::Adaptive;
    std::uint64_t maxShadowLines_ = 1ull << 20;
    std::uint64_t maxRecords_ = 256;
    std::string reportOut_;

    std::array<Shard, NUM_SHARDS> shards_;

    /** Guards thread VCs, sync clocks, barriers, and channels. */
    mutable lockdep::OrderedMutex syncMutex_{lockdep::LockClass::race_sync};
    std::vector<ThreadState> threads_;
    std::unordered_map<addr_t, std::vector<std::uint64_t>> syncVc_;
    std::unordered_map<addr_t, BarrierState> barriers_;
    /** (from<<32|to) -> FIFO of released clocks. */
    std::unordered_map<std::uint64_t,
                       std::deque<std::vector<std::uint64_t>>>
        channels_;

    mutable lockdep::OrderedMutex recordsMutex_{lockdep::LockClass::race_records};
    std::vector<RaceRecord> records_;
    std::unordered_map<std::uint64_t, std::size_t> recordIndex_;

    mutable lockdep::OrderedMutex sitesMutex_{lockdep::LockClass::race_sites};
    std::vector<std::string> siteNames_;
    std::unordered_map<std::string, std::uint32_t> siteIds_;

    std::atomic<stat_t> races_{0};
    std::atomic<stat_t> checked_{0};
    std::atomic<stat_t> edges_{0};
    std::atomic<stat_t> evictions_{0};
    std::atomic<stat_t> expansions_{0};
    std::atomic<stat_t> lineCount_{0};
};

} // namespace race
} // namespace graphite
