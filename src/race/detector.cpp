#include "common/lockdep.h"
#include "race/detector.h"

#include <algorithm>
#include <cstdio>

#include "common/config.h"
#include "common/log.h"
#include "common/strfmt.h"
#include "obs/trace_event.h"

namespace graphite
{
namespace race
{

namespace
{

thread_local int t_suppress = 0;
thread_local std::uint32_t t_site = 0;
thread_local const char* t_siteName = nullptr;

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

const char*
kindName(RaceKind k)
{
    switch (k) {
      case RaceKind::WriteWrite: return "write-write";
      case RaceKind::ReadWrite: return "read-write";
      case RaceKind::WriteRead: return "write-read";
    }
    return "?";
}

const char*
kindTag(RaceKind k)
{
    switch (k) {
      case RaceKind::WriteWrite: return "ww";
      case RaceKind::ReadWrite: return "rw";
      case RaceKind::WriteRead: return "wr";
    }
    return "?";
}

std::string
hexStr(addr_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::atomic<bool> Detector::armedFlag_{false};

Detector&
Detector::instance()
{
    static Detector detector;
    return detector;
}

Detector::InternalScope::InternalScope()
{
    ++t_suppress;
}

Detector::InternalScope::~InternalScope()
{
    --t_suppress;
}

bool
Detector::suppressed()
{
    return t_suppress > 0;
}

Granularity
Detector::parseGranularity(const std::string& name)
{
    if (name == "adaptive")
        return Granularity::Adaptive;
    if (name == "word")
        return Granularity::Word;
    if (name == "line")
        return Granularity::Line;
    fatal("race/granularity: unknown value '{}' "
          "(adaptive | word | line)",
          name);
}

void
Detector::configure(const Config& cfg, tile_id_t total_tiles)
{
    bool enabled = cfg.getBool("race/enabled", false);
    armedFlag_.store(enabled, std::memory_order_relaxed);

    totalTiles_ = total_tiles;
    granularity_ = parseGranularity(
        cfg.getString("race/granularity", "adaptive"));
    maxShadowLines_ = static_cast<std::uint64_t>(
        cfg.getInt("race/max_shadow_lines", 1 << 20));
    maxRecords_ =
        static_cast<std::uint64_t>(cfg.getInt("race/max_records", 256));
    reportOut_ = cfg.getString("race/report_out", "");

    for (Shard& s : shards_) {
        lockdep::Guard lock(s.mutex);
        s.lines.clear();
    }
    {
        lockdep::Guard lock(syncMutex_);
        threads_.assign(static_cast<std::size_t>(total_tiles),
                        ThreadState{});
        for (ThreadState& t : threads_)
            t.vc.assign(static_cast<std::size_t>(total_tiles), 0);
        // Clocks start at 1 so a live epoch never equals EPOCH_NONE.
        for (tile_id_t t = 0; t < total_tiles; ++t)
            threads_[t].vc[t] = 1;
        syncVc_.clear();
        barriers_.clear();
        channels_.clear();
    }
    {
        lockdep::Guard lock(recordsMutex_);
        records_.clear();
        recordIndex_.clear();
    }
    {
        lockdep::Guard lock(sitesMutex_);
        siteNames_.assign(1, "?");
        siteIds_.clear();
    }
    races_.store(0, std::memory_order_relaxed);
    checked_.store(0, std::memory_order_relaxed);
    edges_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    expansions_.store(0, std::memory_order_relaxed);
    lineCount_.store(0, std::memory_order_relaxed);
}

std::uint32_t
Detector::setSite(const char* name)
{
    // Fast path: the same string literal as last time on this thread.
    if (name == t_siteName)
        return t_site;
    std::uint32_t id;
    {
        lockdep::Guard lock(sitesMutex_);
        auto [it, inserted] = siteIds_.try_emplace(
            name, static_cast<std::uint32_t>(siteNames_.size()));
        if (inserted)
            siteNames_.emplace_back(name);
        id = it->second;
    }
    t_siteName = name;
    t_site = id;
    return id;
}

std::string
Detector::siteName(std::uint32_t id) const
{
    lockdep::Guard lock(sitesMutex_);
    if (id < siteNames_.size())
        return siteNames_[id];
    return "?";
}

// ------------------------------------------------------------ vector clocks

void
Detector::join(std::vector<std::uint64_t>& into,
               const std::vector<std::uint64_t>& from)
{
    if (into.size() < from.size())
        into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i)
        into[i] = std::max(into[i], from[i]);
}

// ------------------------------------------------------------- data accesses

void
Detector::onAccess(tile_id_t tile, addr_t addr, std::uint64_t size,
                   bool is_write, cycle_t when)
{
    if (size == 0)
        return;
    GRAPHITE_ASSERT(tile >= 0 && tile < totalTiles_);
    // The thread's own clock vector is only mutated by itself or by the
    // MCP while it is blocked, so it is quiescent here (see header).
    const std::vector<std::uint64_t>& vc = threads_[tile].vc;
    std::uint32_t site = t_site;

    addr_t first = addr & ~addr_t{3};
    addr_t last = (addr + size - 1) & ~addr_t{3};
    std::uint64_t step =
        granularity_ == Granularity::Line ? LINE_BYTES : 4;
    if (granularity_ == Granularity::Line) {
        first = addr & ~addr_t{LINE_BYTES - 1};
        last = (addr + size - 1) & ~addr_t{LINE_BYTES - 1};
    }
    for (addr_t a = first;; a += step) {
        checkWord(tile, vc, a, is_write, site, when);
        if (a >= last)
            break;
    }
}

void
Detector::expandLine(ShadowLine& line) const
{
    line.cells.assign(WORDS_PER_LINE, WordCell{});
    for (std::uint32_t i = 0; i < WORDS_PER_LINE; ++i) {
        if (line.cw[i] != 0) {
            line.cells[i].w = makeEpoch(line.owner, line.cw[i]);
            line.cells[i].wSite = line.cwSite[i];
        }
        if (line.cr[i] != 0) {
            line.cells[i].r = makeEpoch(line.owner, line.cr[i]);
            line.cells[i].rSite = line.crSite[i];
        }
    }
    line.owner = INVALID_TILE_ID;
}

void
Detector::checkWord(tile_id_t tile, const std::vector<std::uint64_t>& vc,
                    addr_t word_addr, bool is_write, std::uint32_t site,
                    cycle_t when)
{
    checked_.fetch_add(1, std::memory_order_relaxed);
    addr_t line_addr = word_addr & ~addr_t{LINE_BYTES - 1};
    std::uint32_t widx =
        granularity_ == Granularity::Line
            ? 0
            : static_cast<std::uint32_t>((word_addr >> 2) &
                                         (WORDS_PER_LINE - 1));
    Shard& shard =
        shards_[mix64(line_addr >> 6) & (NUM_SHARDS - 1)];
    lockdep::Guard lock(shard.mutex);

    auto it = shard.lines.find(line_addr);
    if (it == shard.lines.end()) {
        // Bound the table: forgetting history can only miss races.
        if (shard.lines.size() >=
            maxShadowLines_ / NUM_SHARDS + 1) {
            evictions_.fetch_add(shard.lines.size(),
                                 std::memory_order_relaxed);
            lineCount_.fetch_sub(shard.lines.size(),
                                 std::memory_order_relaxed);
            shard.lines.clear();
        }
        it = shard.lines.emplace(line_addr, ShadowLine{}).first;
        lineCount_.fetch_add(1, std::memory_order_relaxed);
        ShadowLine& fresh = it->second;
        if (granularity_ == Granularity::Adaptive) {
            fresh.owner = tile;
        } else {
            std::uint32_t n =
                granularity_ == Granularity::Line ? 1 : WORDS_PER_LINE;
            fresh.cells.assign(n, WordCell{});
        }
    }
    ShadowLine& line = it->second;
    std::uint64_t my_clock = vc[tile];

    if (line.owner != INVALID_TILE_ID) {
        if (line.owner == tile) {
            // Single-owner compact path: same-thread accesses cannot
            // race; just advance the recorded clocks.
            if (is_write) {
                line.cw[widx] = my_clock;
                line.cwSite[widx] = site;
            } else {
                line.cr[widx] = my_clock;
                line.crSite[widx] = site;
            }
            return;
        }
        // Second thread touches the line: lossless expansion to full
        // per-word FastTrack cells.
        expandLine(line);
        expansions_.fetch_add(1, std::memory_order_relaxed);
    }

    WordCell& cell =
        line.cells[granularity_ == Granularity::Line ? 0 : widx];
    epoch_t my_epoch = makeEpoch(tile, my_clock);

    if (!is_write) {
        if (cell.readVc.empty() && cell.r == my_epoch)
            return; // same-epoch read
        if (cell.w != EPOCH_NONE) {
            tile_id_t wt = epochTile(cell.w);
            if (wt != tile && epochClock(cell.w) > vc[wt])
                report(RaceKind::WriteRead, word_addr, cell.w,
                       cell.wSite, tile, my_clock, site, when);
        }
        if (!cell.readVc.empty()) {
            cell.readVc[tile] = my_clock;
            cell.rSite = site;
            return;
        }
        if (cell.r == EPOCH_NONE || epochTile(cell.r) == tile ||
            epochClock(cell.r) <= vc[epochTile(cell.r)]) {
            // Previous read happens-before us: stay in the cheap
            // exclusive-read representation.
            cell.r = my_epoch;
            cell.rSite = site;
        } else {
            // Two concurrent readers: promote to a read vector clock.
            cell.readVc.assign(static_cast<std::size_t>(totalTiles_),
                               0);
            cell.readVc[epochTile(cell.r)] = epochClock(cell.r);
            cell.readVc[tile] = my_clock;
            cell.r = EPOCH_NONE;
            cell.rSite = site;
        }
        return;
    }

    if (cell.w == my_epoch)
        return; // same-epoch write
    if (cell.w != EPOCH_NONE) {
        tile_id_t wt = epochTile(cell.w);
        if (wt != tile && epochClock(cell.w) > vc[wt])
            report(RaceKind::WriteWrite, word_addr, cell.w, cell.wSite,
                   tile, my_clock, site, when);
    }
    if (!cell.readVc.empty()) {
        for (tile_id_t u = 0; u < totalTiles_; ++u) {
            if (u != tile && cell.readVc[u] > vc[u]) {
                report(RaceKind::ReadWrite, word_addr,
                       makeEpoch(u, cell.readVc[u]), cell.rSite, tile,
                       my_clock, site, when);
                break;
            }
        }
    } else if (cell.r != EPOCH_NONE) {
        tile_id_t rt = epochTile(cell.r);
        if (rt != tile && epochClock(cell.r) > vc[rt])
            report(RaceKind::ReadWrite, word_addr, cell.r, cell.rSite,
                   tile, my_clock, site, when);
    }
    cell.w = my_epoch;
    cell.wSite = site;
    cell.r = EPOCH_NONE;
    cell.readVc.clear();
}

void
Detector::clearRange(addr_t addr, std::uint64_t size)
{
    if (size == 0)
        return;
    addr_t first = addr & ~addr_t{LINE_BYTES - 1};
    addr_t last = (addr + size - 1) & ~addr_t{LINE_BYTES - 1};
    for (addr_t a = first;; a += LINE_BYTES) {
        Shard& shard = shards_[mix64(a >> 6) & (NUM_SHARDS - 1)];
        lockdep::Guard lock(shard.mutex);
        if (shard.lines.erase(a) != 0)
            lineCount_.fetch_sub(1, std::memory_order_relaxed);
        if (a >= last)
            break;
    }
}

// ------------------------------------------------------- synchronization

void
Detector::onAtomic(tile_id_t tile, addr_t addr, bool release)
{
    lockdep::Guard lock(syncMutex_);
    ThreadState& t = threads_[tile];
    auto it = syncVc_.find(addr);
    if (it != syncVc_.end())
        join(t.vc, it->second); // acquire
    if (release) {
        std::vector<std::uint64_t>& sv = syncVc_[addr];
        join(sv, t.vc);
        ++t.vc[tile];
    }
    edges_.fetch_add(1, std::memory_order_relaxed);
}

void
Detector::acquireAddr(tile_id_t tile, addr_t addr)
{
    lockdep::Guard lock(syncMutex_);
    auto it = syncVc_.find(addr);
    if (it != syncVc_.end())
        join(threads_[tile].vc, it->second);
    edges_.fetch_add(1, std::memory_order_relaxed);
}

void
Detector::releaseAddr(tile_id_t tile, addr_t addr)
{
    lockdep::Guard lock(syncMutex_);
    ThreadState& t = threads_[tile];
    join(syncVc_[addr], t.vc);
    ++t.vc[tile];
    edges_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
Detector::barrierArrive(tile_id_t tile, addr_t barrier,
                        std::uint32_t total)
{
    lockdep::Guard lock(syncMutex_);
    ThreadState& t = threads_[tile];
    BarrierState& st = barriers_[barrier];
    join(st.pending, t.vc);
    ++t.vc[tile]; // release: later work is not part of this generation
    std::uint64_t gen = st.gen;
    if (++st.arrived >= total) {
        st.released[gen] = std::move(st.pending);
        st.pending.clear();
        st.arrived = 0;
        ++st.gen;
        // A participant can lag at most one full generation (the next
        // one cannot close without its arrival), so two suffice.
        while (st.released.size() > 2)
            st.released.erase(st.released.begin());
    }
    edges_.fetch_add(1, std::memory_order_relaxed);
    return gen;
}

void
Detector::barrierLeave(tile_id_t tile, addr_t barrier, std::uint64_t gen)
{
    lockdep::Guard lock(syncMutex_);
    auto bit = barriers_.find(barrier);
    GRAPHITE_ASSERT(bit != barriers_.end());
    auto git = bit->second.released.find(gen);
    // The generation must be closed before any waiter can leave it.
    GRAPHITE_ASSERT(git != bit->second.released.end());
    join(threads_[tile].vc, git->second);
}

void
Detector::edge(tile_id_t from, tile_id_t to)
{
    if (from < 0 || to < 0 || from >= totalTiles_ || to >= totalTiles_)
        return;
    lockdep::Guard lock(syncMutex_);
    ThreadState& f = threads_[from];
    join(threads_[to].vc, f.vc);
    ++f.vc[from];
    edges_.fetch_add(1, std::memory_order_relaxed);
}

void
Detector::threadStart(tile_id_t tile)
{
    lockdep::Guard lock(syncMutex_);
    ++threads_[tile].vc[tile];
}

void
Detector::msgSendEdge(tile_id_t from, tile_id_t to)
{
    lockdep::Guard lock(syncMutex_);
    ThreadState& f = threads_[from];
    std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
         << 32) |
        static_cast<std::uint32_t>(to);
    channels_[key].push_back(f.vc);
    ++f.vc[from];
    edges_.fetch_add(1, std::memory_order_relaxed);
}

void
Detector::msgRecvEdge(tile_id_t from, tile_id_t to)
{
    lockdep::Guard lock(syncMutex_);
    std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
         << 32) |
        static_cast<std::uint32_t>(to);
    auto it = channels_.find(key);
    if (it == channels_.end() || it->second.empty())
        return;
    join(threads_[to].vc, it->second.front());
    it->second.pop_front();
}

// ----------------------------------------------------------------- reports

void
Detector::report(RaceKind kind, addr_t addr, epoch_t prev,
                 std::uint32_t prev_site, tile_id_t cur_tile,
                 std::uint64_t cur_clock, std::uint32_t cur_site,
                 cycle_t when)
{
    races_.fetch_add(1, std::memory_order_relaxed);
    obs::TraceSink::instant(static_cast<std::uint32_t>(cur_tile),
                            "race", when, "addr",
                            static_cast<std::int64_t>(addr));

    std::uint64_t key =
        mix64(addr) ^ mix64((static_cast<std::uint64_t>(kind) << 60) ^
                            (static_cast<std::uint64_t>(prev_site)
                             << 32) ^
                            cur_site);
    lockdep::Guard lock(recordsMutex_);
    auto it = recordIndex_.find(key);
    if (it != recordIndex_.end()) {
        ++records_[it->second].count;
        return;
    }
    if (records_.size() >= maxRecords_)
        return;
    RaceRecord r;
    r.kind = kind;
    r.addr = addr;
    r.prevTile = epochTile(prev);
    r.prevClock = epochClock(prev);
    r.curTile = cur_tile;
    r.curClock = cur_clock;
    r.prevSite = prev_site;
    r.curSite = cur_site;
    r.cycle = when;
    recordIndex_.emplace(key, records_.size());
    records_.push_back(r);
}

std::vector<RaceRecord>
Detector::records() const
{
    lockdep::Guard lock(recordsMutex_);
    return records_;
}

std::string
Detector::describe(const RaceRecord& r) const
{
    return strfmt("{} race on {}: tile {} [{}] vs tile {} [{}] "
                  "at cycle {} (x{})",
                  kindName(r.kind), hexStr(r.addr), r.prevTile,
                  siteName(r.prevSite), r.curTile, siteName(r.curSite),
                  r.cycle, r.count);
}

stat_t
Detector::shadowLines() const
{
    return lineCount_.load(std::memory_order_relaxed);
}

void
Detector::finalizeReport() const
{
    if (reportOut_.empty())
        return;
    std::FILE* f = std::fopen(reportOut_.c_str(), "w");
    if (f == nullptr)
        fatal("race/report_out: cannot write '{}'", reportOut_);
    std::vector<RaceRecord> recs = records();
    for (const RaceRecord& r : recs) {
        std::string line = strfmt(
            "{{\"kind\":\"{}\",\"addr\":{},\"prev_tile\":{},"
            "\"prev_clock\":{},\"prev_site\":\"{}\",\"cur_tile\":{},"
            "\"cur_clock\":{},\"cur_site\":\"{}\",\"cycle\":{},"
            "\"count\":{}}}",
            kindTag(r.kind), r.addr, r.prevTile, r.prevClock,
            siteName(r.prevSite), r.curTile, r.curClock,
            siteName(r.curSite), r.cycle, r.count);
        std::fputs(line.c_str(), f);
        std::fputc('\n', f);
    }
    std::fclose(f);
}

} // namespace race
} // namespace graphite
