#include "host/host_model.h"

#include <algorithm>
#include <cmath>

#include "common/config.h"
#include "common/log.h"
#include "core/simulator.h"
#include "mem/memory_system.h"

namespace graphite
{

SimulationProfile
SimulationProfile::capture(Simulator& sim, double wall_seconds)
{
    SimulationProfile prof;
    prof.tiles = sim.totalTiles();
    prof.appThreads =
        static_cast<int>(sim.threadManager().threadsSpawned()) + 1;
    prof.instructions.resize(prof.tiles);
    prof.memAccesses.resize(prof.tiles);
    prof.l2Misses.resize(prof.tiles);
    prof.syscalls.resize(prof.tiles);
    for (tile_id_t t = 0; t < prof.tiles; ++t) {
        prof.instructions[t] = sim.tile(t).core().instructionsRetired();
        const TileMemoryStats& ms = sim.memory().stats(t);
        prof.memAccesses[t] = ms.totalAccesses;
        prof.l2Misses[t] = ms.l2ColdMisses + ms.l2CapacityMisses +
                           ms.l2TrueSharingMisses +
                           ms.l2FalseSharingMisses + ms.l2UpgradeMisses;
        prof.syscalls[t] = sim.threadManager().syscallCount(t);
    }

    size_t n = static_cast<size_t>(prof.tiles) * prof.tiles;
    prof.msgMatrix.resize(n, 0);
    prof.byteMatrix.resize(n, 0);
    if (sim.fabric().trafficMatrixEnabled()) {
        for (tile_id_t s = 0; s < prof.tiles; ++s) {
            for (tile_id_t d = 0; d < prof.tiles; ++d) {
                size_t idx = static_cast<size_t>(s) * prof.tiles + d;
                prof.msgMatrix[idx] = sim.fabric().pairMessages(s, d);
                prof.byteMatrix[idx] = sim.fabric().pairBytes(s, d);
            }
        }
    }

    prof.syncModel = sim.syncModel().name();
    prof.syncEvents = sim.syncModel().syncEvents();
    prof.syncWaitMicros = sim.syncModel().syncWaitMicroseconds();
    prof.simulatedCycles = sim.simulatedTime();
    prof.measuredWallSeconds = wall_seconds;
    return prof;
}

SimulationProfile
scaleProfile(const SimulationProfile& prof, double compute_scale,
             double comm_scale)
{
    if (compute_scale <= 0 || comm_scale <= 0)
        fatal("profile scale factors must be positive");
    SimulationProfile out = prof;
    auto scale = [](std::vector<stat_t>& v, double f) {
        for (stat_t& x : v)
            x = static_cast<stat_t>(static_cast<double>(x) * f);
    };
    scale(out.instructions, compute_scale);
    scale(out.memAccesses, compute_scale);
    scale(out.l2Misses, comm_scale);
    scale(out.syscalls, comm_scale);
    scale(out.msgMatrix, comm_scale);
    scale(out.byteMatrix, comm_scale);
    out.syncEvents = static_cast<stat_t>(
        static_cast<double>(out.syncEvents) * comm_scale);
    out.simulatedCycles = static_cast<cycle_t>(
        static_cast<double>(out.simulatedCycles) * compute_scale);
    return out;
}

HostCosts
HostCosts::fromConfig(const Config& cfg)
{
    HostCosts c;
    c.hostClockGhz = cfg.getDouble("host/host_clock_ghz", c.hostClockGhz);
    c.coresPerMachine = static_cast<int>(
        cfg.getInt("host/cores_per_machine", c.coresPerMachine));
    c.procsPerMachine = static_cast<int>(
        cfg.getInt("host/processes_per_machine", c.procsPerMachine));
    c.nativeIpc = cfg.getDouble("host/native_ipc", c.nativeIpc);
    c.instructionCost =
        cfg.getDouble("host/instruction_model_cost", c.instructionCost);
    c.memEventCost =
        cfg.getDouble("host/memory_event_cost", c.memEventCost);
    c.missEventCost =
        cfg.getDouble("host/miss_event_cost", c.missEventCost);
    c.messageCost =
        cfg.getDouble("host/message_send_cost", c.messageCost);
    c.interProcessByteCost = cfg.getDouble(
        "host/inter_process_byte_cost", c.interProcessByteCost);
    c.syscallHostCost =
        cfg.getDouble("host/syscall_host_cost", c.syscallHostCost);
    c.intraProcessLatencyUs = cfg.getDouble(
        "transport/intra_process_latency_us", c.intraProcessLatencyUs);
    c.interProcessLatencyUs = cfg.getDouble(
        "transport/inter_process_latency_us", c.interProcessLatencyUs);
    c.initSecondsPerProcess = cfg.getDouble(
        "host/init_seconds_per_process", c.initSecondsPerProcess);
    c.stallExposure =
        cfg.getDouble("host/stall_exposure", c.stallExposure);
    c.barrierBaseUs =
        cfg.getDouble("host/barrier_base_us", c.barrierBaseUs);
    return c;
}

HostModel::HostModel(HostCosts costs) : costs_(costs)
{
}

HostEstimate
HostModel::estimate(const SimulationProfile& prof, int machines,
                    int cores_per_machine) const
{
    if (machines <= 0)
        fatal("host model: machines must be positive (got {})", machines);
    const int cores = cores_per_machine > 0 ? cores_per_machine
                                            : costs_.coresPerMachine;
    const int P = machines * costs_.procsPerMachine;
    const tile_id_t N = prof.tiles;
    const double hz = costs_.hostClockGhz * 1e9;

    auto proc_of = [&](tile_id_t t) { return t % P; };

    // Per-tile host work (cycles) and latency stalls (seconds).
    std::vector<double> work(N, 0.0);
    std::vector<double> stall(N, 0.0);
    for (tile_id_t t = 0; t < N; ++t) {
        work[t] = static_cast<double>(prof.instructions[t]) *
                      costs_.instructionCost +
                  static_cast<double>(prof.memAccesses[t]) *
                      costs_.memEventCost +
                  static_cast<double>(prof.l2Misses[t]) *
                      costs_.missEventCost +
                  static_cast<double>(prof.syscalls[t]) *
                      costs_.syscallHostCost;
        // Syscalls are round trips to the MCP in process 0.
        double sys_lat = proc_of(t) != 0 ? costs_.interProcessLatencyUs
                                         : costs_.intraProcessLatencyUs;
        stall[t] += costs_.stallExposure *
                    static_cast<double>(prof.syscalls[t]) * 2.0 *
                    sys_lat * 1e-6;
        if (proc_of(t) != 0) {
            work[t] += static_cast<double>(prof.syscalls[t]) * 2.0 *
                       costs_.messageCost;
        }
    }

    // Message traffic: per-pair locality under the modeled layout.
    // Intra-process delivery is a shared-memory data-structure update
    // whose cost is already inside missEventCost; only inter-process
    // messages pay the socket CPU cost (send+recv syscalls,
    // serialization). Latency stalls are weighted by stallExposure:
    // under lax synchronization most of a thread's wait is overlapped
    // by other threads multiplexed on the same host core, and only the
    // exposed fraction lands on the wall clock.
    for (tile_id_t s = 0; s < N; ++s) {
        for (tile_id_t d = 0; d < N; ++d) {
            size_t idx = static_cast<size_t>(s) * N + d;
            stat_t msgs = prof.msgMatrix[idx];
            if (msgs == 0)
                continue;
            stat_t bytes = prof.byteMatrix[idx];
            if (proc_of(s) != proc_of(d)) {
                double cpu =
                    static_cast<double>(msgs) * costs_.messageCost +
                    static_cast<double>(bytes) *
                        costs_.interProcessByteCost;
                work[s] += cpu / 2;
                work[d] += cpu / 2;
                stall[s] += costs_.stallExposure *
                            static_cast<double>(msgs) *
                            costs_.interProcessLatencyUs * 1e-6;
            } else {
                stall[s] += costs_.stallExposure *
                            static_cast<double>(msgs) *
                            costs_.intraProcessLatencyUs * 1e-6;
            }
        }
    }

    // Per-machine time: total work multiplexed over cores, bounded below
    // by the slowest single thread (its stalls do not consume CPU but do
    // serialize with its own work).
    HostEstimate est;
    double parallel = 0;
    double worst_stall = 0;
    for (int m = 0; m < machines; ++m) {
        double machine_work = 0;
        double critical = 0;
        int threads_here = 0;
        for (tile_id_t t = 0; t < N; ++t) {
            if (proc_of(t) / costs_.procsPerMachine != m)
                continue;
            ++threads_here;
            machine_work += work[t] / hz;
            critical =
                std::max(critical, work[t] / hz + stall[t]);
            worst_stall = std::max(worst_stall, stall[t]);
        }
        if (threads_here == 0)
            continue;
        double multiplexed =
            machine_work / std::min(cores, threads_here);
        parallel = std::max(parallel, std::max(multiplexed, critical));
    }
    est.computeSeconds = parallel;
    est.commStallSeconds = worst_stall;

    // Synchronization-model overhead.
    if (prof.syncModel == "lax_barrier") {
        double per_epoch_us =
            costs_.barrierBaseUs +
            (P > 1 ? 2.0 * costs_.interProcessLatencyUs *
                         std::log2(static_cast<double>(P) + 1)
                   : 0.0);
        est.syncSeconds =
            static_cast<double>(prof.syncEvents) * per_epoch_us * 1e-6;
    } else if (prof.syncModel == "lax_p2p") {
        // Sleeps overlap across threads; the average per-thread share
        // lands on the critical path.
        est.syncSeconds = static_cast<double>(prof.syncWaitMicros) *
                          1e-6 /
                          std::max(1, prof.appThreads);
    }

    est.initSeconds = costs_.initSecondsPerProcess * P;
    est.totalSeconds =
        est.initSeconds + est.computeSeconds + est.syncSeconds;
    return est;
}

double
HostModel::nativeSeconds(const SimulationProfile& prof) const
{
    const double ips = costs_.hostClockGhz * 1e9 * costs_.nativeIpc;
    double total = 0;
    double critical = 0;
    for (stat_t instr : prof.instructions) {
        total += static_cast<double>(instr);
        critical = std::max(critical, static_cast<double>(instr));
    }
    int threads = std::max(1, prof.appThreads);
    double multiplexed =
        total / (ips * std::min(threads, costs_.coresPerMachine));
    return std::max(multiplexed, critical / ips);
}

} // namespace graphite
