#include "common/lockdep.h"
#include "host/scheduler.h"

#include <chrono>
#include <limits>
#include <thread>

#include "common/config.h"
#include "common/log.h"
#include "perf/core_model.h"

namespace graphite
{
namespace host
{

SchedulerConfig
SchedulerConfig::fromConfig(const Config& cfg)
{
    SchedulerConfig out;
    std::string mode = cfg.getString("host/scheduler", "free_running");
    if (mode == "off")
        out.mode = SchedMode::Off;
    else if (mode == "deterministic")
        out.mode = SchedMode::Deterministic;
    else if (mode == "free_running")
        out.mode = SchedMode::FreeRunning;
    else
        fatal("host/scheduler must be off|deterministic|free_running, "
              "got '{}'",
              mode);

    out.hostThreads = static_cast<int>(cfg.getInt("host/threads", 0));
    if (out.hostThreads < 0)
        fatal("host/threads must be >= 0, got {}", out.hostThreads);
    if (out.hostThreads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        out.hostThreads = hw > 0 ? static_cast<int>(hw) : 1;
    }
    out.quantumCycles =
        static_cast<cycle_t>(cfg.getInt("host/quantum_cycles", 10000));
    if (out.quantumCycles <= 0)
        fatal("host/quantum_cycles must be positive");
    out.skewSlack =
        static_cast<cycle_t>(cfg.getInt("host/skew_slack", 0));
    return out;
}

HostScheduler::HostScheduler(const SchedulerConfig& cfg,
                             tile_id_t total_tiles)
    : cfg_(cfg),
      slots_(cfg.mode == SchedMode::Deterministic ? 1 : cfg.hostThreads),
      threads_(static_cast<size_t>(total_tiles))
{
    GRAPHITE_ASSERT(cfg_.mode != SchedMode::Off);
    GRAPHITE_ASSERT(slots_ >= 1);
}

const char*
HostScheduler::modeName() const
{
    switch (cfg_.mode) {
      case SchedMode::Off: return "off";
      case SchedMode::Deterministic: return "deterministic";
      case SchedMode::FreeRunning: return "free_running";
    }
    return "?";
}

HostScheduler::ThreadState
HostScheduler::blockedState(BlockKind kind)
{
    switch (kind) {
      case BlockKind::Sys: return ThreadState::BlockedSys;
      case BlockKind::App: return ThreadState::BlockedApp;
      case BlockKind::Sync: return ThreadState::BlockedSync;
    }
    return ThreadState::BlockedSys;
}

// ------------------------------------------------------------- lifecycle

void
HostScheduler::expectThread(tile_id_t tile)
{
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    if (r.state == ThreadState::Absent) {
        r.state = ThreadState::Expected;
        grantLocked();
    } else {
        // The previous occupant sent its ThreadExit to the MCP but has
        // not called finishThread() yet; queue the respawn so the tile
        // re-enters the rotation the moment the old thread leaves.
        GRAPHITE_ASSERT(!r.respawnPending);
        r.respawnPending = true;
    }
}

void
HostScheduler::registerThread(tile_id_t tile, const CoreModel* core)
{
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    if (r.state == ThreadState::Expected ||
        r.state == ThreadState::Granted) {
        r.core = core;
    } else {
        // Respawn raced ahead of the old occupant's finishThread();
        // stash the clock until the tile slot is actually vacated.
        GRAPHITE_ASSERT(r.respawnPending);
        r.pendingCore = core;
    }
}

void
HostScheduler::start(tile_id_t tile)
{
    lockdep::UniqueLock lock(mutex_);
    waitGrant(lock, tile);
}

void
HostScheduler::finishThread(tile_id_t tile)
{
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    GRAPHITE_ASSERT(r.state == ThreadState::Running);
    --used_;
    r.fenceTicket = 0;
    r.fenceDone = 0;
    r.wakeClock = 0;
    r.quantumStart = 0;
    if (r.respawnPending) {
        r.state = ThreadState::Expected;
        r.core = r.pendingCore;
        r.pendingCore = nullptr;
        r.respawnPending = false;
    } else {
        r.state = ThreadState::Absent;
        r.core = nullptr;
    }
    grantLocked();
}

void
HostScheduler::resetForRun()
{
    lockdep::Guard lock(mutex_);
    GRAPHITE_ASSERT(used_ == 0);
    cursor_ = 0;
}

// ----------------------------------------------------------- quantum loop

void
HostScheduler::quantumCheck(tile_id_t tile)
{
    ThreadRec& r = threads_[tile];
    // Owner-only fast path: quantumStart is written by this thread
    // while Running (waitGrant / here), and the grant handshake orders
    // any earlier writes.
    cycle_t now = r.core->cycle();
    if (now - r.quantumStart < cfg_.quantumCycles)
        return;
    quanta_.fetch_add(1, std::memory_order_relaxed);

    lockdep::UniqueLock lock(mutex_);
    r.quantumStart = now;
    if (cfg_.skewSlack > 0 && now > cfg_.skewSlack) {
        if (parkLocked(lock, tile, now - cfg_.skewSlack) > 0)
            return; // re-granted with a fresh quantum
    }
    promoteSkewParkedLocked();
    if (anyWaiterLocked()) {
        yields_.fetch_add(1, std::memory_order_relaxed);
        releaseSlotLocked(tile, ThreadState::Ready);
        waitGrant(lock, tile);
    }
}

// ------------------------------------------------------ blocking protocol

void
HostScheduler::beginBlock(tile_id_t tile, BlockKind kind)
{
    lockdep::UniqueLock lock(mutex_);
    GRAPHITE_ASSERT(threads_[tile].state == ThreadState::Running);
    releaseSlotLocked(tile, blockedState(kind));
}

void
HostScheduler::endBlock(tile_id_t tile)
{
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    switch (r.state) {
      case ThreadState::BlockedSys:
      case ThreadState::BlockedApp:
      case ThreadState::BlockedSync:
        // free_running self-wake (and teardown unwind in either mode).
        r.state = ThreadState::Ready;
        grantLocked();
        break;
      case ThreadState::Ready:
      case ThreadState::Granted:
        // deterministic mode: notifyUnblocked already re-queued us.
        break;
      default:
        panic("endBlock: tile {} in unexpected state {}", tile,
              static_cast<int>(r.state));
    }
    waitGrant(lock, tile);
}

void
HostScheduler::notifyUnblocked(tile_id_t tile, BlockKind kind)
{
    if (!deterministic())
        return;
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    if (r.state == blockedState(kind)) {
        r.state = ThreadState::Ready;
        grantLocked();
    }
}

// ---------------------------------------------------------- request fence

void
HostScheduler::requestFence(tile_id_t tile)
{
    if (!deterministic())
        return;
    lockdep::UniqueLock lock(mutex_);
    ThreadRec& r = threads_[tile];
    std::uint64_t ticket = ++r.fenceTicket;
    r.cv.wait(lock, [&] { return r.fenceDone >= ticket; });
}

void
HostScheduler::requestDispatched(tile_id_t tile)
{
    if (!deterministic())
        return;
    lockdep::UniqueLock lock(mutex_);
    ++threads_[tile].fenceDone;
    threads_[tile].cv.notify_one();
}

// -------------------------------------------------------------- skew gate

std::uint64_t
HostScheduler::skewPark(tile_id_t tile, cycle_t wake_clock)
{
    lockdep::UniqueLock lock(mutex_);
    GRAPHITE_ASSERT(threads_[tile].state == ThreadState::Running);
    return parkLocked(lock, tile, wake_clock);
}

std::uint64_t
HostScheduler::parkLocked(lockdep::UniqueLock& lock,
                          tile_id_t tile, cycle_t wake_clock)
{
    if (minActiveClockLocked() >= wake_clock)
        return 0;
    auto t0 = std::chrono::steady_clock::now();
    skewParks_.fetch_add(1, std::memory_order_relaxed);
    ThreadRec& r = threads_[tile];
    r.wakeClock = wake_clock;
    releaseSlotLocked(tile, ThreadState::SkewParked);
    waitGrant(lock, tile);
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    skewParkNs_.fetch_add(static_cast<stat_t>(ns),
                          std::memory_order_relaxed);
    return static_cast<std::uint64_t>(ns);
}

cycle_t
HostScheduler::minActiveClockLocked() const
{
    cycle_t mn = std::numeric_limits<cycle_t>::max();
    for (const ThreadRec& r : threads_) {
        switch (r.state) {
          case ThreadState::Expected:
          case ThreadState::Ready:
          case ThreadState::Granted:
          case ThreadState::Running:
          case ThreadState::SkewParked: {
            cycle_t c = r.core != nullptr ? r.core->cycle() : 0;
            mn = std::min(mn, c);
            break;
          }
          default:
            break; // blocked or absent threads cannot advance
        }
    }
    return mn;
}

void
HostScheduler::promoteSkewParkedLocked()
{
    cycle_t mn = minActiveClockLocked();
    for (ThreadRec& r : threads_) {
        if (r.state == ThreadState::SkewParked && mn >= r.wakeClock)
            r.state = ThreadState::Ready;
    }
}

// -------------------------------------------------------- slot management

void
HostScheduler::releaseSlotLocked(tile_id_t tile, ThreadState next)
{
    ThreadRec& r = threads_[tile];
    GRAPHITE_ASSERT(r.state == ThreadState::Running);
    r.state = next;
    --used_;
    grantLocked();
}

bool
HostScheduler::anyWaiterLocked() const
{
    for (const ThreadRec& r : threads_) {
        if (r.state == ThreadState::Ready ||
            r.state == ThreadState::Expected)
            return true;
    }
    return false;
}

void
HostScheduler::grantLocked()
{
    promoteSkewParkedLocked();
    const auto total = static_cast<tile_id_t>(threads_.size());
    while (used_ < slots_) {
        tile_id_t pick = INVALID_TILE_ID;
        for (tile_id_t i = 0; i < total; ++i) {
            tile_id_t t = (cursor_ + i) % total;
            ThreadState st = threads_[t].state;
            if (st == ThreadState::Ready ||
                st == ThreadState::Expected) {
                pick = t;
                break;
            }
        }
        if (pick == INVALID_TILE_ID)
            break;
        threads_[pick].state = ThreadState::Granted;
        ++used_;
        cursor_ = (pick + 1) % total;
        // Targeted wake: only the granted tile's owner can be waiting
        // on this channel. An Expected tile has no waiter yet; its
        // host thread sees the grant when it reaches start().
        threads_[pick].cv.notify_one();
    }
}

void
HostScheduler::waitGrant(lockdep::UniqueLock& lock,
                         tile_id_t tile)
{
    ThreadRec& r = threads_[tile];
    r.cv.wait(lock,
              [&] { return r.state == ThreadState::Granted; });
    r.state = ThreadState::Running;
    if (r.core != nullptr)
        r.quantumStart = r.core->cycle();
}

// ------------------------------------------------------------- statistics

PoolGauges
HostScheduler::gauges() const
{
    lockdep::UniqueLock lock(mutex_);
    PoolGauges g;
    g.slots = slots_;
    for (const ThreadRec& r : threads_) {
        switch (r.state) {
          case ThreadState::Running: ++g.executing; break;
          case ThreadState::Ready:
          case ThreadState::Granted: ++g.runnable; break;
          case ThreadState::BlockedSys:
          case ThreadState::BlockedApp:
          case ThreadState::BlockedSync: ++g.blocked; break;
          case ThreadState::SkewParked: ++g.skewParked; break;
          case ThreadState::Expected: ++g.expected; break;
          case ThreadState::Absent: break;
        }
    }
    return g;
}

} // namespace host
} // namespace graphite
