/**
 * @file
 * Host execution scheduler: bounded-pool multiplexing of target
 * threads onto host execution slots (paper §3.6, §4.1).
 *
 * Graphite's performance claim rests on target threads executing
 * *concurrently* on the host under lax synchronization. The simulator
 * keeps the paper's 1:1 target-thread/host-thread model (§3.5) but
 * gates execution: a target thread must hold one of `host/threads`
 * execution slots to run, and it yields the slot cooperatively at
 * quantum boundaries (`host/quantum_cycles` of simulated time), when
 * it blocks in the system layer (MCP round trips, message receive,
 * sync-model barriers), or when the skew gate parks it. Scheduling
 * cost is thus amortized over a quantum instead of paid per access.
 *
 * Modes (`host/scheduler`):
 *  - off:           legacy behavior, every target thread is runnable
 *                   whenever the host OS says so; all hooks vanish.
 *  - free_running:  up to `host/threads` slots granted in tile-id
 *                   round-robin; maximum throughput, host-timing
 *                   dependent interleavings.
 *  - deterministic: a single slot granted in fixed tile-id round-robin
 *                   order at quantum boundaries, plus a request fence
 *                   that serializes every app->MCP message before the
 *                   sender may proceed. The schedule — and therefore
 *                   the simulation result — is a pure function of the
 *                   configuration, identical across `host/threads`
 *                   values (the pool width is deliberately ignored;
 *                   see DESIGN.md "Determinism guarantees and limits").
 *
 * Park/unpark protocol: every state transition happens under one
 * scheduler mutex; each waiting thread sleeps on its own per-tile
 * condition variable and is woken individually when its slot is
 * granted (no broadcast — a shared condvar would wake every parked
 * thread per handoff). A thread that blocks *releases its slot first*
 * (beginBlock) and re-queues on wake (endBlock); the slot therefore
 * always represents a thread that can make forward progress.
 *
 * Skew gate: at a quantum boundary a thread whose clock is more than
 * `host/skew_slack` cycles ahead of the minimum clock over all
 * schedulable threads parks until the laggards catch up. The minimum
 * is computed including the parked threads themselves and the thread
 * at the minimum never parks, so the gate cannot deadlock. LaxP2PSync
 * reuses the same parking primitive (skewPark) in place of its
 * wall-clock sleep when the scheduler is active.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/lockdep.h"
#include "common/stats.h"

namespace graphite
{

class Config;
class CoreModel;

namespace host
{

enum class SchedMode : std::uint8_t
{
    Off,
    Deterministic,
    FreeRunning,
};

/** Resolved scheduler configuration (see fromConfig). */
struct SchedulerConfig
{
    SchedMode mode = SchedMode::FreeRunning;
    int hostThreads = 0;        ///< pool width; 0 = hardware concurrency
    cycle_t quantumCycles = 10000;
    cycle_t skewSlack = 0;      ///< scheduler-level gate; 0 = off

    /**
     * Parse host/scheduler, host/threads, host/quantum_cycles and
     * host/skew_slack; hostThreads is resolved (never 0 on return).
     */
    static SchedulerConfig fromConfig(const Config& cfg);
};

/** Live pool occupancy for /status and the host.pool.* gauges. */
struct PoolGauges
{
    int slots = 0;
    int executing = 0;  ///< threads holding a slot and running
    int runnable = 0;   ///< Ready or Granted, waiting to run
    int blocked = 0;    ///< blocked in MCP/app/sync waits
    int skewParked = 0; ///< parked by the skew gate
    int expected = 0;   ///< spawn granted, host thread not yet arrived
};

class HostScheduler
{
  public:
    /** Why a thread is giving up its slot (selects the wake channel). */
    enum class BlockKind : std::uint8_t
    {
        Sys,  ///< waiting for an MCP reply
        App,  ///< waiting for an application message
        Sync, ///< waiting inside the sync model (barrier epoch)
    };

    HostScheduler(const SchedulerConfig& cfg, tile_id_t total_tiles);

    SchedMode mode() const { return cfg_.mode; }
    bool deterministic() const
    {
        return cfg_.mode == SchedMode::Deterministic;
    }
    int slots() const { return slots_; }
    cycle_t quantum() const { return cfg_.quantumCycles; }
    const char* modeName() const;

    /** @name Thread lifecycle @{ */
    /**
     * The MCP (or launchMain) committed @p tile to a new thread; the
     * tile joins the scheduling rotation immediately so the rotation
     * order never depends on host thread-creation latency.
     */
    void expectThread(tile_id_t tile);

    /** The host thread arrived on @p tile; @p core is its clock. */
    void registerThread(tile_id_t tile, const CoreModel* core);

    /** Block until the tile's first slot grant; then it is Running. */
    void start(tile_id_t tile);

    /** The thread finished: release the slot and leave the rotation. */
    void finishThread(tile_id_t tile);

    /**
     * Reset cross-run cursor state so a second run() on the same
     * Simulator (or a run resumed from a checkpoint) grants slots in
     * the same order as a fresh simulation. Per-thread records are
     * already reset by finishThread() at quiescence.
     */
    void resetForRun();
    /** @} */

    /**
     * Cooperative yield point, called from the instruction-tick hook.
     * Fast path: one relaxed clock load per check. On quantum expiry:
     * apply the skew gate, then hand the slot to the next waiter (if
     * any) and re-queue.
     */
    void quantumCheck(tile_id_t tile);

    /** @name Blocking protocol @{ */
    /** Release the slot before a blocking wait. Never blocks. */
    void beginBlock(tile_id_t tile, BlockKind kind);

    /** Re-acquire a slot after the wait; blocks until granted. */
    void endBlock(tile_id_t tile);

    /**
     * Deterministic wake hook: the (slot-holding or MCP) caller marks
     * @p tile runnable again. Only acts in deterministic mode and only
     * when the tile is blocked with matching @p kind — wake timing must
     * come from simulation events, not from host thread wake latency.
     * No-op in free_running mode (threads self-mark in endBlock).
     */
    void notifyUnblocked(tile_id_t tile, BlockKind kind);
    /** @} */

    /**
     * Deterministic request fence: called by the sender after pushing a
     * message to the MCP; blocks until the MCP has fully dispatched it.
     * This serializes MCP side effects into the single-slot execution
     * order. No-op outside deterministic mode.
     */
    void requestFence(tile_id_t tile);

    /** MCP side of the fence: one call per dispatched message. */
    void requestDispatched(tile_id_t tile);

    /**
     * Park the calling (slot-holding) thread until the minimum clock
     * over all schedulable threads reaches @p wake_clock. Returns the
     * wall nanoseconds spent parked (0 if the condition already held).
     * Used by the quantum-boundary skew gate and by LaxP2PSync.
     */
    std::uint64_t skewPark(tile_id_t tile, cycle_t wake_clock);

    /** @name Statistics @{ */
    PoolGauges gauges() const;
    const std::atomic<stat_t>* quantaCounter() const { return &quanta_; }
    const std::atomic<stat_t>* yieldsCounter() const { return &yields_; }
    const std::atomic<stat_t>* skewParksCounter() const
    {
        return &skewParks_;
    }
    const std::atomic<stat_t>* skewParkNsCounter() const
    {
        return &skewParkNs_;
    }
    /** @} */

  private:
    enum class ThreadState : std::uint8_t
    {
        Absent,      ///< no thread on this tile
        Expected,    ///< committed by spawn; host thread not arrived
        Ready,       ///< wants a slot
        Granted,     ///< holds a slot, owner not yet (re)started
        Running,     ///< holds a slot and executes
        BlockedSys,  ///< released slot, waiting for an MCP reply
        BlockedApp,  ///< released slot, waiting for an app message
        BlockedSync, ///< released slot, waiting in the sync model
        SkewParked,  ///< released slot, parked by the skew gate
    };

    struct ThreadRec
    {
        ThreadState state = ThreadState::Absent;
        const CoreModel* core = nullptr;
        cycle_t quantumStart = 0; ///< owner-only while Running
        cycle_t wakeClock = 0;    ///< SkewParked promotion threshold
        std::uint64_t fenceTicket = 0; ///< owner-only request count
        std::uint64_t fenceDone = 0;   ///< MCP dispatch count
        /** A spawn reused this tile before the old occupant left. */
        bool respawnPending = false;
        const CoreModel* pendingCore = nullptr;
        /**
         * Per-thread wake channel: only this tile's owner ever waits
         * here (for a grant or for its fence ticket), so every wakeup
         * is targeted — a broadcast on a shared condvar would wake
         * every parked thread per slot handoff just for all but one
         * to go back to sleep, and on an oversubscribed host that
         * thundering herd dominates scheduling cost.
         */
        lockdep::CondVar cv;
    };

    static ThreadState blockedState(BlockKind kind);

    /** Min clock over schedulable threads; cycle_t max if none. */
    cycle_t minActiveClockLocked() const;

    /** Promote SkewParked threads whose wake condition now holds. */
    void promoteSkewParkedLocked();

    /** Fill free slots in tile-id round-robin order from the cursor. */
    void grantLocked();

    /** Wait until this tile holds a slot; transitions to Running. */
    void waitGrant(lockdep::UniqueLock& lock, tile_id_t tile);

    /** skewPark body with mutex_ already held. */
    std::uint64_t parkLocked(lockdep::UniqueLock& lock,
                             tile_id_t tile, cycle_t wake_clock);

    /** Release the calling thread's slot into @p next state. */
    void releaseSlotLocked(tile_id_t tile, ThreadState next);

    bool anyWaiterLocked() const;

    const SchedulerConfig cfg_;
    const int slots_; ///< 1 in deterministic mode

    mutable lockdep::OrderedMutex mutex_{lockdep::LockClass::sched_pool};
    std::vector<ThreadRec> threads_;
    int used_ = 0;          ///< slots currently granted
    tile_id_t cursor_ = 0;  ///< round-robin grant cursor

    std::atomic<stat_t> quanta_{0};
    std::atomic<stat_t> yields_{0};
    std::atomic<stat_t> skewParks_{0};
    std::atomic<stat_t> skewParkNs_{0};
};

} // namespace host
} // namespace graphite
