/**
 * @file
 * Analytical model of the simulator's own host-side performance.
 *
 * The paper's scaling evaluation (Figures 4 and 5, Table 2) measures
 * wall-clock time of Graphite itself on a cluster of 8-core machines.
 * This environment has a single host core (see DESIGN.md substitution 2),
 * so cluster wall-clock is *modeled*: a functional run produces a
 * SimulationProfile (per-tile event counts + a tile-pair traffic
 * matrix), and HostModel::estimate() computes the wall-clock time that
 * run would take for a hypothetical cluster layout — work per tile from
 * per-event costs, machine time from core multiplexing and per-thread
 * critical paths (communication stalls overlap compute across threads
 * but not within one), barrier/sync overhead by sync model, and the
 * sequential per-process initialization the paper cites as the scaling
 * limit of Figure 5.
 *
 * Per-event costs default to values calibrated with bench/micro_components
 * and are configurable under [host].
 */

#pragma once

#include <string>
#include <vector>

#include "common/fixed_types.h"
#include "common/stats.h"

namespace graphite
{

class Config;
class Simulator;

/** Everything the host model needs from a finished functional run. */
struct SimulationProfile
{
    tile_id_t tiles = 0;
    int appThreads = 0;

    /** @name Per-tile event counts @{ */
    std::vector<stat_t> instructions;
    std::vector<stat_t> memAccesses;
    std::vector<stat_t> l2Misses;
    std::vector<stat_t> syscalls;
    /** @} */

    /** Tile-pair message/byte counts, src-major (App + Memory). */
    std::vector<stat_t> msgMatrix;
    std::vector<stat_t> byteMatrix;

    std::string syncModel;        ///< "lax" | "lax_barrier" | "lax_p2p"
    stat_t syncEvents = 0;        ///< barrier epochs / P2P sleeps
    stat_t syncWaitMicros = 0;    ///< measured sync-model wait time

    cycle_t simulatedCycles = 0;
    double measuredWallSeconds = 0; ///< actual wall time of this run

    /** Gather the profile from a simulator after run(). */
    static SimulationProfile capture(Simulator& sim,
                                     double wall_seconds = 0);
};

/**
 * Extrapolate a reduced-size profile toward the paper's problem sizes.
 *
 * Functional runs here use scaled-down inputs (a 1-core host cannot run
 * SPLASH default sizes in reasonable time), which inflates coherence
 * traffic per instruction relative to the paper's runs. Compute-type
 * counts (instructions, memory accesses) are multiplied by
 * @p compute_scale and sharing-type counts (misses, messages, syscalls)
 * by @p comm_scale; the per-experiment factors and the asymptotic
 * op-count formulas they come from are tabulated in EXPERIMENTS.md.
 */
SimulationProfile scaleProfile(const SimulationProfile& prof,
                               double compute_scale, double comm_scale);

/** Host-side cost parameters ([host] config section). */
struct HostCosts
{
    double hostClockGhz = 3.16;
    int coresPerMachine = 8;
    int procsPerMachine = 1;
    double nativeIpc = 1.0;

    double instructionCost = 90;     ///< host cycles / modeled instr
    double memEventCost = 420;       ///< host cycles / memory access
    double missEventCost = 2000;     ///< host cycles / L2 miss transaction
    double messageCost = 600;        ///< host cycles / transported message
    double interProcessByteCost = 2; ///< extra host cycles / byte, sockets
    double syscallHostCost = 3000;   ///< host cycles / MCP syscall

    double intraProcessLatencyUs = 0.5; ///< one-way, shared memory
    double interProcessLatencyUs = 50;  ///< one-way, TCP
    /**
     * Fraction of per-thread message latency that is *not* hidden by
     * multiplexing other threads onto the stalled thread's host core
     * (lax synchronization overlaps most of it).
     */
    double stallExposure = 0.02;
    double initSecondsPerProcess = 1.0; ///< sequential startup (§4.2)
    double barrierBaseUs = 5;           ///< in-process barrier release

    static HostCosts fromConfig(const Config& cfg);
};

/** One cluster-configuration estimate. */
struct HostEstimate
{
    double totalSeconds = 0;
    double initSeconds = 0;
    double computeSeconds = 0;   ///< parallel-region machine time
    double commStallSeconds = 0; ///< largest per-thread latency stall
    double syncSeconds = 0;      ///< sync-model overhead
};

/** The simulator-of-the-simulator. */
class HostModel
{
  public:
    explicit HostModel(HostCosts costs);

    /**
     * Estimate simulation wall-clock for @p machines host machines.
     * @param cores_per_machine overrides the configured core count when
     *        positive (Figure 4 sweeps cores within one machine).
     */
    HostEstimate estimate(const SimulationProfile& prof, int machines,
                          int cores_per_machine = 0) const;

    /**
     * Estimated native execution time of the profiled application on
     * one host machine (critical-path thread at nativeIpc, cores
     * shared).
     */
    double nativeSeconds(const SimulationProfile& prof) const;

    const HostCosts& costs() const { return costs_; }

  private:
    HostCosts costs_;
};

} // namespace graphite
