#include "snapshot/checkpoint.h"

#include "common/strfmt.h"
#include "core/simulator.h"
#include "snapshot/snapshot.h"

namespace graphite::snapshot
{

namespace
{

constexpr std::uint32_t TAG_CONFIG = sectionTag("CFG ");
constexpr std::uint32_t TAG_CORES = sectionTag("CORE");
constexpr std::uint32_t TAG_MEMORY = sectionTag("MEM ");
constexpr std::uint32_t TAG_NETWORK = sectionTag("NET ");
constexpr std::uint32_t TAG_SYNC = sectionTag("SYNC");
constexpr std::uint32_t TAG_THREADS = sectionTag("THRD");
constexpr std::uint32_t TAG_APP = sectionTag("APP ");

/**
 * Target-architecture signature. Only knobs that change the *shape* of
 * serialized state belong here; per-component loadState() methods
 * verify their own internals (cache geometry, directory type, mesh
 * link counts) with more specific errors. Host-side knobs
 * (host/threads, scheduler mode, telemetry) are deliberately absent:
 * a checkpoint may be resumed under any host configuration.
 */
void
writeSignature(SnapshotWriter& w, Simulator& sim)
{
    const Config& cfg = sim.config();
    w.u32(static_cast<std::uint32_t>(sim.totalTiles()));
    w.u32(static_cast<std::uint32_t>(
        cfg.getInt("perf_model/l2_cache/line_size", 64)));
    w.str(cfg.getString("caching_protocol/type", "dir_msi"));
    w.str(sim.syncModel().name());
}

void
checkSignature(SnapshotReader& r, Simulator& sim)
{
    const Config& cfg = sim.config();
    const auto tiles = r.u32();
    if (tiles != static_cast<std::uint32_t>(sim.totalTiles()))
        throw SnapshotError(
            strfmt("snapshot: tile count mismatch (checkpoint has {}, "
                   "target config has {})",
                   tiles, sim.totalTiles()));
    const auto line = r.u32();
    const auto want_line = static_cast<std::uint32_t>(
        cfg.getInt("perf_model/l2_cache/line_size", 64));
    if (line != want_line)
        throw SnapshotError(
            strfmt("snapshot: cache line size mismatch (checkpoint has "
                   "{}, target config has {})",
                   line, want_line));
    const std::string proto = r.str();
    const std::string want_proto =
        cfg.getString("caching_protocol/type", "dir_msi");
    if (proto != want_proto)
        throw SnapshotError(
            strfmt("snapshot: coherence protocol mismatch (checkpoint "
                   "has '{}', target config has '{}')",
                   proto, want_proto));
    const std::string sync = r.str();
    if (sync != sim.syncModel().name())
        throw SnapshotError(
            strfmt("snapshot: sync model mismatch (checkpoint has "
                   "'{}', target config has '{}')",
                   sync, sim.syncModel().name()));
}

} // namespace

std::vector<std::uint8_t>
saveCheckpoint(Simulator& sim, const std::vector<std::uint8_t>& app_blob)
{
    SnapshotWriter w;

    w.beginSection(TAG_CONFIG);
    writeSignature(w, sim);

    w.beginSection(TAG_CORES);
    const tile_id_t tiles = sim.totalTiles();
    w.u32(static_cast<std::uint32_t>(tiles));
    for (tile_id_t t = 0; t < tiles; ++t)
        sim.tile(t).core().saveState(w);

    w.beginSection(TAG_MEMORY);
    sim.memory().saveState(w);

    w.beginSection(TAG_NETWORK);
    sim.fabric().saveState(w);

    w.beginSection(TAG_SYNC);
    sim.syncModel().saveState(w);

    w.beginSection(TAG_THREADS);
    sim.threadManager().saveState(w);

    w.beginSection(TAG_APP);
    w.bytes(app_blob.data(), app_blob.size());

    return w.finish();
}

std::vector<std::uint8_t>
restoreCheckpoint(Simulator& sim, const std::vector<std::uint8_t>& data)
{
    SnapshotReader r(data);

    r.expectSection(TAG_CONFIG, "config signature");
    checkSignature(r, sim);

    r.expectSection(TAG_CORES, "core models");
    const auto tiles = r.u32();
    if (tiles != static_cast<std::uint32_t>(sim.totalTiles()))
        throw SnapshotError(
            strfmt("snapshot: core section tile count mismatch "
                   "(checkpoint has {}, target config has {})",
                   tiles, sim.totalTiles()));
    for (tile_id_t t = 0; t < sim.totalTiles(); ++t)
        sim.tile(t).core().loadState(r);

    r.expectSection(TAG_MEMORY, "memory system");
    sim.memory().loadState(r);

    r.expectSection(TAG_NETWORK, "network fabric");
    sim.fabric().loadState(r);

    r.expectSection(TAG_SYNC, "sync model");
    sim.syncModel().loadState(r);

    r.expectSection(TAG_THREADS, "thread manager");
    sim.threadManager().loadState(r);

    r.expectSection(TAG_APP, "application blob");
    std::vector<std::uint8_t> app_blob = r.bytes();

    r.expectEnd();
    return app_blob;
}

void
saveCheckpointFile(Simulator& sim, const std::string& path,
                   const std::vector<std::uint8_t>& app_blob)
{
    writeFile(path, saveCheckpoint(sim, app_blob));
}

std::vector<std::uint8_t>
restoreCheckpointFile(Simulator& sim, const std::string& path)
{
    return restoreCheckpoint(sim, readFile(path));
}

} // namespace graphite::snapshot
