#include "snapshot/snapshot.h"

#include <cstdio>

#include "common/strfmt.h"

namespace graphite
{
namespace snapshot
{
namespace
{

std::string
tagName(std::uint32_t tag)
{
    char s[5];
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
        s[i] = (c >= 0x20 && c < 0x7F) ? c : '?';
    }
    s[4] = '\0';
    return std::string(s);
}

} // namespace

std::uint64_t
fnv1a(const std::uint8_t* data, std::size_t len)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

// ---------------------------------------------------------------- writer

SnapshotWriter::SnapshotWriter()
{
    u32(SNAPSHOT_MAGIC);
    u32(FORMAT_VERSION);
}

void
SnapshotWriter::bytes(const void* data, std::size_t len)
{
    u64(static_cast<std::uint64_t>(len));
    raw(data, len);
}

std::vector<std::uint8_t>
SnapshotWriter::finish()
{
    if (finished_)
        throw SnapshotError("snapshot: finish() called twice");
    finished_ = true;
    std::uint64_t sum = fnv1a(buf_.data(), buf_.size());
    raw(&sum, sizeof sum);
    return std::move(buf_);
}

// ---------------------------------------------------------------- reader

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> data)
    : data_(std::move(data))
{
    // header (magic + version) + checksum trailer
    constexpr std::size_t MIN_SIZE = 4 + 4 + 8;
    if (data_.size() < MIN_SIZE)
        throw SnapshotError(
            strfmt("snapshot: truncated ({} bytes, need at least {})",
                   data_.size(), MIN_SIZE));

    payloadEnd_ = data_.size() - 8;
    std::uint64_t stored = 0;
    std::memcpy(&stored, data_.data() + payloadEnd_, sizeof stored);
    std::uint64_t computed = fnv1a(data_.data(), payloadEnd_);
    if (stored != computed)
        throw SnapshotError(
            strfmt("snapshot: checksum mismatch (stored {}, "
                   "computed {}) — file is corrupted or truncated",
                   stored, computed));

    std::uint32_t magic = u32();
    if (magic != SNAPSHOT_MAGIC)
        throw SnapshotError(
            strfmt("snapshot: bad magic {} (expected 'GRSN'); not a "
                   "snapshot file",
                   magic));
    version_ = u32();
    if (version_ != FORMAT_VERSION)
        throw SnapshotError(
            strfmt("snapshot: format version {} unsupported (this "
                   "build reads version {}); re-create the checkpoint",
                   version_, FORMAT_VERSION));
}

void
SnapshotReader::need(std::size_t n, const char* what) const
{
    if (payloadEnd_ - pos_ < n)
        throw SnapshotError(
            strfmt("snapshot: truncated reading {} at offset {} "
                   "(need {} bytes, {} left)",
                   what, pos_, n, payloadEnd_ - pos_));
}

void
SnapshotReader::raw(void* out, std::size_t len, const char* what)
{
    need(len, what);
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
}

std::uint8_t
SnapshotReader::u8()
{
    std::uint8_t v = 0;
    raw(&v, sizeof v, "u8");
    return v;
}

std::uint16_t
SnapshotReader::u16()
{
    std::uint16_t v = 0;
    raw(&v, sizeof v, "u16");
    return v;
}

std::uint32_t
SnapshotReader::u32()
{
    std::uint32_t v = 0;
    raw(&v, sizeof v, "u32");
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    std::uint64_t v = 0;
    raw(&v, sizeof v, "u64");
    return v;
}

std::int64_t
SnapshotReader::i64()
{
    std::int64_t v = 0;
    raw(&v, sizeof v, "i64");
    return v;
}

std::vector<std::uint8_t>
SnapshotReader::bytes()
{
    std::uint64_t len = u64();
    need(len, "byte run");
    std::vector<std::uint8_t> out(data_.begin() +
                                      static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() +
                                      static_cast<std::ptrdiff_t>(pos_ +
                                                                  len));
    pos_ += len;
    return out;
}

void
SnapshotReader::bytesInto(void* out, std::size_t expected_len)
{
    std::uint64_t len = u64();
    if (len != expected_len)
        throw SnapshotError(
            strfmt("snapshot: byte run length {} does not match the "
                   "expected {} at offset {}",
                   len, expected_len, pos_));
    raw(out, expected_len, "byte run");
}

std::string
SnapshotReader::str()
{
    std::vector<std::uint8_t> raw_bytes = bytes();
    return std::string(raw_bytes.begin(), raw_bytes.end());
}

void
SnapshotReader::expectSection(std::uint32_t tag, const char* name)
{
    std::uint32_t got = u32();
    if (got != tag)
        throw SnapshotError(
            strfmt("snapshot: expected section '{}' ({}) but found "
                   "'{}' — layout drift or corruption",
                   tagName(tag), name, tagName(got)));
}

void
SnapshotReader::expectEnd() const
{
    if (pos_ != payloadEnd_)
        throw SnapshotError(
            strfmt("snapshot: {} trailing bytes after the last section",
                   payloadEnd_ - pos_));
}

// ------------------------------------------------------------------ file

void
writeFile(const std::string& path,
          const std::vector<std::uint8_t>& data)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw SnapshotError(
            strfmt("snapshot: cannot open '{}' for writing", path));
    std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
    bool ok = n == data.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw SnapshotError(
            strfmt("snapshot: short write to '{}'", path));
}

std::vector<std::uint8_t>
readFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SnapshotError(
            strfmt("snapshot: cannot open '{}' for reading", path));
    std::vector<std::uint8_t> out;
    std::uint8_t chunk[65536];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        out.insert(out.end(), chunk, chunk + n);
    bool err = std::ferror(f) != 0;
    std::fclose(f);
    if (err)
        throw SnapshotError(strfmt("snapshot: read error on '{}'", path));
    return out;
}

} // namespace snapshot
} // namespace graphite
