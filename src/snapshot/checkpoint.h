/**
 * @file
 * Whole-simulator checkpoint/restore (ROADMAP item 3).
 *
 * A checkpoint captures the complete architectural state of a
 * Simulator at quiescence — between run() segments, when no
 * application, MCP, or LCP host thread is live (host stacks cannot be
 * serialized; the quiescent cut is exact by construction). Saved
 * state: per-tile core models (clocks, slot rings, branch predictor
 * tables, instruction counters), the full memory system (caches with
 * target data, directory slices, DRAM controllers and queue clocks,
 * backing store, target heap), network-model clocks and counters, the
 * sync model's skew state, and the thread manager's exit clocks and
 * syscall counters.
 *
 * A run checkpointed at cycle C and resumed in a fresh Simulator (same
 * target config) produces the same FNV fingerprint and simulated-cycle
 * totals as an uninterrupted run — validated continuously by the
 * src/check fuzz matrix (snapshot differential) and
 * tests/test_snapshot.cpp.
 *
 * The optional application blob rides inside the checkpoint so the
 * workload can persist its own bookkeeping (heap addresses, round
 * cursors, running fingerprints) across the save/restore boundary.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphite
{

class Simulator;

namespace snapshot
{

/**
 * Serialize @p sim's full architectural state into a sealed snapshot
 * blob. Call only at quiescence (before run(), or after a run()
 * segment returned). @throws SnapshotError when the simulator is not
 * quiescent (blocked threads).
 */
std::vector<std::uint8_t>
saveCheckpoint(Simulator& sim,
               const std::vector<std::uint8_t>& app_blob = {});

/**
 * Restore a checkpoint into @p sim, which must be built from a
 * matching target configuration and must not be running. The next
 * run() continues from the restored state.
 * @return the application blob stored by saveCheckpoint
 * @throws SnapshotError on corruption, truncation, version mismatch,
 *         or configuration drift (every error names what diverged)
 */
std::vector<std::uint8_t>
restoreCheckpoint(Simulator& sim,
                  const std::vector<std::uint8_t>& data);

/** saveCheckpoint straight to @p path. @throws SnapshotError */
void saveCheckpointFile(Simulator& sim, const std::string& path,
                        const std::vector<std::uint8_t>& app_blob = {});

/** restoreCheckpoint straight from @p path. @throws SnapshotError */
std::vector<std::uint8_t>
restoreCheckpointFile(Simulator& sim, const std::string& path);

} // namespace snapshot
} // namespace graphite
