/**
 * @file
 * Versioned binary snapshot stream: the serialization substrate for
 * checkpoint/restore (ROADMAP item 3, DESIGN.md "Snapshot format &
 * versioning").
 *
 * Layout of a snapshot blob:
 *
 *   u32 magic    "GRSN" (0x4E535247 little-endian)
 *   u32 version  FORMAT_VERSION at write time
 *   ...          sequential tagged sections (see beginSection)
 *   u64 checksum FNV-1a over every preceding byte (header included)
 *
 * The stream is strictly sequential — readers must consume sections in
 * the exact order writers emitted them; a section tag acts as a
 * checkpoint that converts "reader and writer disagree about layout"
 * into a named SnapshotError instead of silently misaligned integers.
 * All integers are little-endian fixed width. Containers are written
 * as a u64 count followed by the elements; unordered containers must
 * be emitted in sorted key order so that re-serializing restored state
 * is byte-identical to the original snapshot.
 *
 * Every failure mode (truncation, corruption, bad magic, version
 * mismatch, tag mismatch, trailing garbage) throws SnapshotError with
 * a message naming what was expected — restore never crashes on bad
 * input.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace graphite
{
namespace snapshot
{

/** Thrown on any malformed, truncated or incompatible snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** "GRSN" little-endian. */
inline constexpr std::uint32_t SNAPSHOT_MAGIC = 0x4E535247u;

/**
 * On-disk format version. Bump on ANY layout change — the golden
 * fixture test (tests/test_snapshot.cpp) fails when the layout drifts
 * without a bump.
 */
inline constexpr std::uint32_t FORMAT_VERSION = 1;

/** Build a four-character section tag, e.g. sectionTag("MEM "). */
constexpr std::uint32_t
sectionTag(const char (&s)[5])
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[1]))
               << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[2]))
               << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]))
               << 24;
}

/** FNV-1a 64-bit over a byte range (the checksum trailer). */
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len);

/**
 * Append-only snapshot serializer. Construct, write sections, then
 * finish() exactly once to seal the checksum trailer.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter();

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i64(std::int64_t v) { raw(&v, sizeof v); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Length-prefixed raw byte run. */
    void bytes(const void* data, std::size_t len);

    /** Length-prefixed UTF-8 string. */
    void str(const std::string& s) { bytes(s.data(), s.size()); }

    /** Mark the start of a named section. */
    void beginSection(std::uint32_t tag) { u32(tag); }

    /** Seal the stream with the checksum trailer and return it. */
    std::vector<std::uint8_t> finish();

  private:
    void raw(const void* data, std::size_t len)
    {
        const auto* p = static_cast<const std::uint8_t*>(data);
        buf_.insert(buf_.end(), p, p + len);
    }

    std::vector<std::uint8_t> buf_;
    bool finished_ = false;
};

/**
 * Sequential snapshot deserializer. The constructor validates magic,
 * version and checksum up front, so a reader that gets past
 * construction is working on an intact stream of the right version.
 */
class SnapshotReader
{
  public:
    /**
     * @throws SnapshotError on short input, bad magic, version
     *         mismatch, or checksum failure.
     */
    explicit SnapshotReader(std::vector<std::uint8_t> data);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    bool b() { return u8() != 0; }

    /** Read a length-prefixed byte run written by bytes(). */
    std::vector<std::uint8_t> bytes();

    /** Read a length-prefixed byte run into @p out (size must match). */
    void bytesInto(void* out, std::size_t expected_len);

    std::string str();

    /**
     * Consume a section tag; @p name labels the SnapshotError when the
     * stream holds a different tag (layout drift or corruption).
     */
    void expectSection(std::uint32_t tag, const char* name);

    /** Assert the payload is fully consumed (no trailing garbage). */
    void expectEnd() const;

    /** Stream format version (always FORMAT_VERSION today). */
    std::uint32_t version() const { return version_; }

  private:
    void need(std::size_t n, const char* what) const;
    void raw(void* out, std::size_t len, const char* what);

    std::vector<std::uint8_t> data_;
    std::size_t pos_ = 0;
    std::size_t payloadEnd_ = 0; ///< offset of the checksum trailer
    std::uint32_t version_ = 0;
};

/** Write a sealed snapshot blob to @p path. @throws SnapshotError */
void writeFile(const std::string& path,
               const std::vector<std::uint8_t>& data);

/** Read a whole file into memory. @throws SnapshotError */
std::vector<std::uint8_t> readFile(const std::string& path);

} // namespace snapshot
} // namespace graphite
